"""Scalar-vs-vectorised dataplane parity (the tentpole property).

The vectorised switch chain must be *bit-identical* to the scalar
:class:`PathEncoder` under shared seeds, across all three digest
representations, and the batched multiplicative compression must match
the scalar :class:`UtilizationCodec` coin-for-coin.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.congestion import UtilizationCodec
from repro.coding import pack_reps, pack_reps_array
from repro.replay import Trace, TraceDataplane, build_trace, compress_utilizations


def wide_trace():
    """Hand-built trace with wide blocks (forces real fragmentation)."""
    paths = [(1001, 2002, 3003), (1001, 4004, 2002, 9009), (5005, 9009)]
    n = 96
    rng = np.random.default_rng(0)
    return Trace(
        ts=np.arange(n) * 1e-6,
        flow_id=rng.integers(1, 9, size=n),
        pid=np.arange(n),
        path_id=rng.integers(0, len(paths), size=n),
        size=np.full(n, 1500),
        paths=paths,
        name="wide",
    )


class TestPackRepsArray:
    @given(st.lists(st.lists(st.integers(0, 2**16 - 1), min_size=2,
                             max_size=2), min_size=1, max_size=30),
           st.integers(1, 16))
    @settings(max_examples=50)
    def test_matches_scalar(self, rows, bits):
        arr = pack_reps_array(np.asarray(rows, dtype=np.uint64), bits)
        assert arr.tolist() == [pack_reps(row, bits) for row in rows]


class TestDataplaneParity:
    @pytest.mark.parametrize("mode,digest_bits,num_hashes", [
        ("hash", 8, 1),
        ("hash", 4, 2),
        ("raw", 16, 1),
        ("fragment", 4, 1),
    ])
    def test_modes_bit_identical(self, mode, digest_bits, num_hashes):
        trace = wide_trace()
        dp = TraceDataplane(trace, digest_bits=digest_bits,
                            num_hashes=num_hashes, mode=mode, seed=5)
        rows = np.arange(len(trace))
        assert np.array_equal(dp.encode_rows(rows),
                              dp.encode_scalar_rows(rows))

    def test_scenario_trace_bit_identical(self):
        trace = build_trace("web-search", packets=1200, seed=3)
        dp = TraceDataplane(trace, seed=9)
        rows = np.arange(len(trace))
        assert np.array_equal(dp.encode_rows(rows),
                              dp.encode_scalar_rows(rows))

    def test_same_seed_same_digests(self):
        trace = build_trace("incast", packets=800, seed=1)
        rows = np.arange(len(trace))
        a = TraceDataplane(trace, seed=4).encode_rows(rows)
        b = TraceDataplane(trace, seed=4).encode_rows(rows)
        c = TraceDataplane(trace, seed=5).encode_rows(rows)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_batch_split_invariant(self):
        # Encoding in two halves equals encoding in one batch: there is
        # no cross-record state.
        trace = wide_trace()
        dp = TraceDataplane(trace, seed=2)
        whole = dp.encode_batch(0, len(trace))
        halves = np.concatenate([
            dp.encode_batch(0, len(trace) // 2),
            dp.encode_batch(len(trace) // 2, len(trace)),
        ])
        assert np.array_equal(whole, halves)

    def test_empty_rows(self):
        dp = TraceDataplane(wide_trace())
        assert dp.encode_rows(np.asarray([], dtype=np.int64)).size == 0

    def test_packed_width_beyond_int64_rejected(self):
        # The collector's digest column is int64; 64 packed bits would
        # wrap negative and diverge from the scalar packing.
        with pytest.raises(ValueError, match="int64"):
            TraceDataplane(wide_trace(), digest_bits=16, num_hashes=4)
        TraceDataplane(wide_trace(), digest_bits=21, num_hashes=3)  # 63: ok


class TestCompressionParity:
    def test_compress_utilizations_matches_scalar(self):
        codec = UtilizationCodec(8, seed=3)
        rng = np.random.default_rng(1)
        n = 300
        utils = rng.uniform(0.0, 2.0, size=n)
        pids = rng.integers(0, 2**32, size=n)
        hops = rng.integers(1, 6, size=n)
        codes = compress_utilizations(codec, utils, pids, hops)
        expected = [
            codec.encode(float(u), int(p), int(h))
            for u, p, h in zip(utils, pids, hops)
        ]
        assert codes.tolist() == expected

    def test_codec_encode_array_clamps_like_scalar(self):
        codec = UtilizationCodec(8, seed=0, max_util=4.0)
        utils = np.asarray([0.0, 3.9, 4.0, 400.0])
        pids = np.asarray([1, 2, 3, 4])
        arr = codec.encode_array(utils, pids, 2)
        assert arr.tolist() == [
            codec.encode(float(u), int(p), 2) for u, p in zip(utils, pids)
        ]
        # Everything past max_util hits the top of the grid.
        assert arr[2] == arr[3]

"""Scenario-generator determinism and trace well-formedness."""

import numpy as np
import pytest

from repro.replay import build_trace, scenario, scenario_names


class TestRegistry:
    def test_at_least_six_scenarios(self):
        assert len(scenario_names()) >= 6

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="web-search"):
            build_trace("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            scenario("incast", "dup")(lambda **kw: None)


class TestGeneratedTraces:
    @pytest.mark.parametrize("name", scenario_names())
    def test_deterministic_from_seed(self, name):
        a = build_trace(name, packets=1200, seed=7)
        b = build_trace(name, packets=1200, seed=7)
        assert a.paths == b.paths
        for col in ("ts", "flow_id", "pid", "path_id", "size"):
            assert np.array_equal(getattr(a, col), getattr(b, col)), col

    @pytest.mark.parametrize("name", scenario_names())
    def test_seed_changes_trace(self, name):
        a = build_trace(name, packets=1200, seed=7)
        c = build_trace(name, packets=1200, seed=8)
        assert (
            not np.array_equal(a.ts, c.ts)
            or not np.array_equal(a.path_id, c.path_id)
            or a.paths != c.paths
        )

    @pytest.mark.parametrize("name", scenario_names())
    def test_well_formed(self, name):
        t = build_trace(name, packets=1200, seed=0)
        assert 0 < len(t) <= 1200
        # Time-sorted with sequential pids: the replay contract.
        assert np.all(np.diff(t.ts) >= 0)
        assert np.array_equal(t.pid, np.arange(len(t)))
        assert t.hop_counts.min() >= 1
        assert t.size.min() >= 1
        assert set(np.unique(t.path_id).tolist()) <= set(range(len(t.paths)))
        for p in t.paths:
            assert set(p) <= set(t.universe)

    def test_path_churn_flows_really_churn(self):
        t = build_trace("path-churn", packets=2000, seed=1)
        multi = [fid for fid, pids in t.flow_paths().items() if len(pids) > 1]
        assert multi, "churn scenario produced no multi-path flows"

    def test_elephant_mice_skew(self):
        t = build_trace("elephant-mice", packets=2000, seed=1)
        counts = np.unique(t.flow_id, return_counts=True)[1]
        assert counts.max() > 50 * np.median(counts)

    def test_incast_waves_share_destination(self):
        t = build_trace("incast", packets=1000, seed=0)
        # All paths end at the aggregator's edge switch.
        assert len({p[-1] for p in t.paths if p}) == 1

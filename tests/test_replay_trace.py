"""Tests for the columnar Trace container (persistence, invariants)."""

import numpy as np
import pytest

from repro.replay import Trace


def small_trace():
    paths = [(1, 2, 3), (1, 4, 3), (7,)]
    return Trace(
        ts=[0.0, 1e-5, 2e-5, 3e-5, 4e-5],
        flow_id=[10, 11, 10, 12, 11],
        pid=[0, 1, 2, 3, 4],
        path_id=[0, 1, 0, 2, 1],
        size=[1500, 1500, 700, 40, 1500],
        paths=paths,
        name="unit",
    )


class TestTraceBasics:
    def test_shape_and_universe(self):
        t = small_trace()
        assert len(t) == 5
        assert t.num_flows == 3
        assert t.universe == (1, 2, 3, 4, 7)

    def test_hop_counts_follow_paths(self):
        t = small_trace()
        assert t.hop_counts.tolist() == [3, 3, 3, 1, 3]
        assert t.path_of(3) == (7,)

    def test_flow_paths_ground_truth(self):
        t = small_trace()
        assert t.flow_paths() == {10: (0,), 11: (1,), 12: (2,)}

    def test_batches_cover_in_order(self):
        t = small_trace()
        bounds = list(t.batches(2))
        assert bounds == [(0, 2), (2, 4), (4, 5)]
        with pytest.raises(ValueError):
            list(t.batches(0))

    def test_sorted_by_time_stable(self):
        t = Trace([2.0, 1.0, 1.0], [1, 2, 3], [0, 1, 2], [0, 0, 0],
                  [9, 9, 9], [(5,)])
        s = t.sorted_by_time()
        assert s.ts.tolist() == [1.0, 1.0, 2.0]
        assert s.flow_id.tolist() == [2, 3, 1]  # equal stamps keep order

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Trace([0.0], [1, 2], [0], [0], [9], [(5,)])

    def test_bad_path_ids_rejected(self):
        with pytest.raises(ValueError):
            Trace([0.0], [1], [0], [3], [9], [(5,)])
        with pytest.raises(ValueError):
            Trace([0.0], [1], [0], [-1], [9], [(5,)])

    def test_empty_path_table_rejected(self):
        with pytest.raises(ValueError):
            Trace([0.0], [1], [0], [0], [9], [])
        with pytest.raises(ValueError):
            Trace([0.0], [1], [0], [0], [9], [()])


class TestPersistence:
    def test_npz_roundtrip_exact(self, tmp_path):
        t = small_trace()
        f = str(tmp_path / "t.npz")
        t.save(f)
        back = Trace.load(f)
        assert np.array_equal(back.ts, t.ts)
        assert np.array_equal(back.flow_id, t.flow_id)
        assert np.array_equal(back.pid, t.pid)
        assert np.array_equal(back.path_id, t.path_id)
        assert np.array_equal(back.size, t.size)
        assert back.paths == t.paths
        assert back.universe == t.universe
        assert back.name == t.name

    def test_csv_roundtrip_per_record(self, tmp_path):
        t = small_trace()
        f = str(tmp_path / "t.csv")
        t.to_csv(f)
        back = Trace.from_csv(f)
        assert np.array_equal(back.ts, t.ts)
        assert np.array_equal(back.flow_id, t.flow_id)
        assert np.array_equal(back.pid, t.pid)
        assert np.array_equal(back.size, t.size)
        # Path *ids* may be renumbered by first use; the per-record
        # switch sequences must survive exactly.
        for row in range(len(t)):
            assert back.path_of(row) == t.path_of(row)

    def test_csv_missing_columns_rejected(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("ts,flow_id\n0.0,1\n")
        with pytest.raises(ValueError):
            Trace.from_csv(str(f))


class TestEmptyTraces:
    """A capture window that saw no packets must still checkpoint."""

    def test_construct_empty(self):
        t = Trace([], [], [], [], [], [], name="empty")
        assert len(t) == 0
        assert t.num_flows == 0
        assert t.paths == () and t.universe == ()
        assert t.hop_counts.shape == (0,)
        assert t.flow_paths() == {}
        assert list(t.batches(16)) == []
        assert len(t.sorted_by_time()) == 0

    def test_zero_rows_may_keep_a_path_table(self):
        t = Trace([], [], [], [], [], [(1, 2, 3)], name="warm")
        assert len(t) == 0 and t.paths == ((1, 2, 3),)
        assert t.universe == (1, 2, 3)

    def test_npz_roundtrip_empty(self, tmp_path):
        for paths in ([], [(4, 5)]):
            t = Trace([], [], [], [], [], paths, name="e")
            f = str(tmp_path / f"e{len(paths)}.npz")
            t.save(f)
            back = Trace.load(f)
            assert len(back) == 0
            assert back.paths == t.paths
            assert back.universe == t.universe
            assert back.name == "e"

    def test_csv_roundtrip_empty(self, tmp_path):
        t = Trace([], [], [], [], [], [], name="e")
        f = str(tmp_path / "e.csv")
        t.to_csv(f)
        back = Trace.from_csv(f)
        assert len(back) == 0 and back.paths == ()

    def test_header_only_csv_imports(self, tmp_path):
        f = tmp_path / "empty.csv"
        f.write_text("ts,flow_id,pid,size,path\n")
        back = Trace.from_csv(str(f))
        assert len(back) == 0

    def test_rows_without_paths_still_rejected(self):
        with pytest.raises(ValueError):
            Trace([0.0], [1], [0], [0], [9], [])

"""Tests for the P4 pipeline model and the §5 layouts."""

import pytest

from repro.exceptions import ConfigurationError
from repro.pipeline import (
    DEFAULT_MAX_STAGES,
    Op,
    OpKind,
    PipelineProgram,
    Stage,
    combined_layout,
    hpcc_layout,
    latency_layout,
    merge_parallel,
    path_tracing_layout,
    schedule,
)


class TestModelValidation:
    def test_stage_budget_enforced(self):
        stages = [Stage([Op.make(f"op{i}", OpKind.ALU)]) for i in range(13)]
        with pytest.raises(ConfigurationError):
            PipelineProgram("deep", stages).validate()

    def test_multiplication_rejected(self):
        program = PipelineProgram("mul", [
            Stage([Op.make("ewma-mult", OpKind.MULTIPLY,
                           reads=["a"], writes=["b"])])
        ])
        with pytest.raises(ConfigurationError):
            program.validate()

    def test_intra_stage_raw_rejected(self):
        program = PipelineProgram("raw", [
            Stage([
                Op.make("producer", OpKind.ALU, writes=["x"]),
                Op.make("consumer", OpKind.ALU, reads=["x"], writes=["y"]),
            ])
        ])
        with pytest.raises(ConfigurationError):
            program.validate()

    def test_register_self_update_allowed(self):
        program = PipelineProgram("reg", [
            Stage([Op.make("bump", OpKind.REGISTER,
                           reads=["state"], writes=["state"])])
        ])
        program.validate()  # read-modify-write of one op is legal

    def test_describe_lists_stages(self):
        text = latency_layout().describe()
        assert "4 stages" in text
        assert "compress" in text


class TestScheduler:
    def test_independent_ops_share_stage(self):
        ops = [
            Op.make("a", OpKind.HASH, reads=["pkt"], writes=["x"]),
            Op.make("b", OpKind.HASH, reads=["pkt"], writes=["y"]),
        ]
        program = schedule(ops)
        assert program.num_stages == 1

    def test_chain_makes_stages(self):
        ops = [
            Op.make("a", OpKind.ALU, reads=["in"], writes=["x"]),
            Op.make("b", OpKind.ALU, reads=["x"], writes=["y"]),
            Op.make("c", OpKind.ALU, reads=["y"], writes=["z"]),
        ]
        assert schedule(ops).num_stages == 3

    def test_diamond_dependency(self):
        ops = [
            Op.make("src", OpKind.HASH, writes=["x"]),
            Op.make("left", OpKind.ALU, reads=["x"], writes=["l"]),
            Op.make("right", OpKind.ALU, reads=["x"], writes=["r"]),
            Op.make("join", OpKind.ALU, reads=["l", "r"], writes=["out"]),
        ]
        assert schedule(ops).num_stages == 3

    def test_scheduled_program_is_valid(self):
        ops = [
            Op.make("a", OpKind.ALU, writes=["x"]),
            Op.make("b", OpKind.ALU, reads=["x"], writes=["x2"]),
        ]
        schedule(ops).validate()


class TestPaperLayouts:
    def test_path_tracing_four_stages(self):
        # §5: "running the path tracing application requires four
        # pipeline stages".
        program = path_tracing_layout(num_hashes=1)
        assert program.num_stages == 4
        program.validate()

    def test_two_hashes_same_depth(self):
        # §5: "If we use more than one hash ... executed in parallel".
        assert path_tracing_layout(2).num_stages == 4
        assert path_tracing_layout(2).total_ops() > path_tracing_layout(
            1
        ).total_ops()

    def test_latency_four_stages(self):
        # §5: "Computing the median/tail latency also requires four
        # pipeline stages".
        assert latency_layout().num_stages == 4

    def test_hpcc_eight_stages(self):
        # §5: six stages of utilisation arithmetic, one approximation,
        # one digest write.
        program = hpcc_layout()
        assert program.num_stages == 8
        program.validate()

    def test_hpcc_has_no_multiply(self):
        kinds = {
            op.kind for st in hpcc_layout().stages for op in st.ops
        }
        assert OpKind.MULTIPLY not in kinds
        assert OpKind.TABLE in kinds  # log/exp tables instead

    def test_combined_no_deeper_than_hpcc(self):
        # §5 / Fig. 6: the three-query combination does not increase
        # stage count over HPCC alone.
        combined = combined_layout()
        assert combined.num_stages == hpcc_layout().num_stages
        assert combined.num_stages <= DEFAULT_MAX_STAGES
        combined.validate()

    def test_combined_hosts_all_queries(self):
        names = {
            op.name for st in combined_layout().stages for op in st.ops
        }
        assert any(n.startswith("pt.") for n in names)
        assert any(n.startswith("lat.") for n in names)
        assert any(n.startswith("cc.") for n in names)
        assert any(n.startswith("qs.") for n in names)

    def test_merge_parallel_depth(self):
        merged = merge_parallel("m", [latency_layout(), hpcc_layout()])
        assert merged.num_stages == 8

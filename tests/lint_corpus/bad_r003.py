"""R003 known-bad: unpickling outside the validated codec."""
import pickle

import numpy as np


def thaw(blob, path):
    obj = pickle.loads(blob)                     # bad
    arr = np.load(path, allow_pickle=True)       # bad
    with open(path, "rb") as fh:
        other = pickle.load(fh)                  # bad
    return obj, arr, other

"""R008 known-good: fork module does its work processlessly."""
import multiprocessing as mp


def start_workers(work, n):
    ctx = mp.get_context("fork")
    return [ctx.Process(target=work) for _ in range(n)]

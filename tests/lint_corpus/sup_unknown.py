"""A suppression naming a rule that does not exist: R000."""


def fine():
    return 1  # repro-lint: disable=R999 reason=no such rule

"""R001 known-bad: unseeded RNGs of every flavour."""
import random

import numpy as np


def make_noise(n):
    rng = np.random.default_rng()       # bad: no seed
    jitter = random.random()            # bad: global RNG draw
    r = random.Random()                 # bad: seedable ctor, no seed
    np.random.shuffle(list(range(n)))   # bad: global numpy RNG
    return rng, jitter, r

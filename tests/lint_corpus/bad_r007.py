"""R007 known-bad: frombuffer with no length check."""
import numpy as np


def decode(buf, n):
    return np.frombuffer(buf, dtype="<u8", count=n)   # bad: unchecked

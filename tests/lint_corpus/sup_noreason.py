"""A reason-less suppression: R005 stays AND R000 is added."""


def fail():
    raise RuntimeError("legacy")  # repro-lint: disable=R005

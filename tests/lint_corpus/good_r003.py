"""R003 known-good: pickle-free load; dumps is fine."""
import pickle

import numpy as np


def freeze(obj, path):
    blob = pickle.dumps(obj)                     # producing is fine
    arr = np.load(path)                          # no allow_pickle
    strict = np.load(path, allow_pickle=False)
    return blob, arr, strict

"""R005 known-bad: anonymous exception types."""


def fail(kind):
    if kind == "plain":
        raise RuntimeError("worker died")     # bad
    if kind == "generic":
        raise Exception("something")          # bad
    raise BaseException("worse")              # bad

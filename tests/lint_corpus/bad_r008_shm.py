"""R008 known-bad: SharedMemory(create=True) outside shm-modules.

Unlike the thread prong, the shm prong fires for *any* lib file not
on the shm-modules allowlist -- no special config needed.
"""
from multiprocessing import shared_memory


def grab_segment(size):
    seg = shared_memory.SharedMemory(create=True, size=size)   # bad
    spare = shared_memory.SharedMemory(None, True, 64)         # bad (positional)
    return seg, spare

"""R008 known-good: attaching to an existing segment is fine anywhere."""
from multiprocessing import shared_memory


def map_segment(name):
    # Attach-only (create defaults to False): the owner lives in
    # collector/shm.py; this side merely maps it.
    return shared_memory.SharedMemory(name=name)

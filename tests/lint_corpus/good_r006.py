"""R006 known-good: every write happens under the lock."""
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}                       # __init__: single-threaded

    def put(self, key, value):
        with self._lock:
            self._items = dict(self._items)
            self._items[key] = value

    def close(self):
        self._items = {}                       # allowlisted method

"""A stale suppression on a clean line: R000 unused."""


def fine():
    return 1  # repro-lint: disable=R005 reason=nothing here raises anymore

"""R005 known-good: typed raises; bare re-raise is fine."""
from repro.exceptions import RecoveryError, WorkerFailedError


def fail(kind):
    if kind == "worker":
        raise WorkerFailedError("worker died")
    try:
        raise RecoveryError("shard lost", shard=3)
    except RecoveryError:
        raise                                  # bare re-raise: fine

"""R007 known-good: explicit length check precedes the view."""
import numpy as np


def decode(buf, n):
    if len(buf) < 8 * n:
        raise ValueError("short frame")
    return np.frombuffer(buf, dtype="<u8", count=n)


def decode_asserting(arr, n):
    assert arr.nbytes >= 8 * n
    return np.frombuffer(arr, dtype="<u8", count=n)

"""R002 known-good: the clock is an injectable seam."""
import time


def stamp(record, clock=time.monotonic):  # default ref, not a call
    record["ts"] = clock()
    return record

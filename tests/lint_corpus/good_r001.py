"""R001 known-good: every RNG carries an explicit seed."""
import random

import numpy as np


def make_noise(n, seed):
    rng = np.random.default_rng(seed)
    r = random.Random(seed + 1)
    kw = np.random.default_rng(seed=seed)
    state = random.getstate()           # benign: not a draw
    return rng, r, kw, state

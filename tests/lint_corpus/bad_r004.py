"""R004 known-bad: sidecar field compared and serialized."""
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Report:
    answer: int
    metrics: Optional[dict] = None            # bad: not compare=False
    recovery: Optional[dict] = field(default=None)  # bad: no compare kwarg

    def as_dict(self):
        return {
            "answer": self.answer,
            "metrics": self.metrics,          # bad: sidecar in as_dict
        }

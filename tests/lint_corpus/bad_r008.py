"""R008 known-bad: thread creation in a fork-based module.

Only fires when checked with a config whose fork-modules names this
file (tests/test_lint.py does exactly that).
"""
import threading
from concurrent.futures import ThreadPoolExecutor


def start_helpers(work):
    t = threading.Thread(target=work)           # bad under fork
    pool = ThreadPoolExecutor(max_workers=2)    # bad under fork
    t.start()
    return t, pool

"""A finding suppressed with a written reason: no output."""


def fail():
    raise RuntimeError("legacy")  # repro-lint: disable=R005 reason=fixture demonstrating a valid suppression

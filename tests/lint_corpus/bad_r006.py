"""R006 known-bad: unlocked write in a lock-owning class."""
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        self._items = dict(self._items)        # bad: no lock held
        with self._lock:
            self._items[key] = value

    def reset(self):
        def later():
            self._items = {}                   # bad: runs outside with
        with self._lock:
            return later

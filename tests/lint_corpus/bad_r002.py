"""R002 known-bad: wall-clock reads in library code."""
import time
from datetime import datetime


def stamp(record):
    record["ts"] = time.time()          # bad
    record["mono"] = time.monotonic()   # bad
    record["when"] = datetime.now()     # bad
    return record

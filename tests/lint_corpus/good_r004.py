"""R004 known-good: sidecars are compare=False and unserialized."""
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Report:
    answer: int
    metrics: Optional[dict] = field(default=None, compare=False)
    recovery: Optional[dict] = field(default=None, compare=False)

    def as_dict(self):
        return {"answer": self.answer}

"""Tests for GlobalHash and the reservoir/XOR coordination helpers."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing import (
    GlobalHash,
    acting_hops_fast,
    reservoir_carrier,
    reservoir_carrier_array,
    reservoir_write,
    xor_acting_hops,
)


class TestGlobalHashBasics:
    def test_same_seed_same_function(self):
        a, b = GlobalHash(7, "g"), GlobalHash(7, "g")
        assert a.raw(1, 2) == b.raw(1, 2)

    def test_different_names_independent(self):
        a, b = GlobalHash(7, "g"), GlobalHash(7, "h")
        assert a.raw(1, 2) != b.raw(1, 2)

    def test_derive_differs_from_parent(self):
        g = GlobalHash(7, "g")
        assert g.derive("x").raw(1) != g.raw(1)

    def test_string_parts(self):
        g = GlobalHash(0)
        assert g.raw("flow-a") != g.raw("flow-b")

    def test_bits_width(self):
        g = GlobalHash(3)
        for width in (1, 4, 8, 16, 64):
            v = g.bits(width, 42)
            assert 0 <= v < (1 << width)

    def test_bits_bad_width(self):
        g = GlobalHash(3)
        with pytest.raises(ValueError):
            g.bits(0, 1)
        with pytest.raises(ValueError):
            g.bits(65, 1)

    def test_uniform_range_and_mean(self):
        g = GlobalHash(11, "u")
        vals = [g.uniform(i) for i in range(5000)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert abs(sum(vals) / len(vals) - 0.5) < 0.02

    def test_bernoulli_rate(self):
        g = GlobalHash(5, "b")
        hits = sum(g.bernoulli(0.3, i) for i in range(10000))
        assert 0.27 < hits / 10000 < 0.33

    def test_choice_uniform(self):
        g = GlobalHash(9, "c")
        counts = collections.Counter(g.choice(4, i) for i in range(8000))
        for v in range(4):
            assert 1700 < counts[v] < 2300

    def test_weighted_choice_distribution(self):
        g = GlobalHash(13, "w")
        counts = collections.Counter(
            g.weighted_choice([0.5, 0.25, 0.25], i) for i in range(8000)
        )
        assert 3700 < counts[0] < 4300
        assert 1700 < counts[1] < 2300

    def test_weighted_choice_bad_weights(self):
        g = GlobalHash(0)
        with pytest.raises(ValueError):
            g.weighted_choice([0.0, 0.0], 1)


class TestVectorAgreement:
    @given(st.integers(0, 2**32), st.integers(1, 60))
    @settings(max_examples=50)
    def test_uniform_array_matches_scalar(self, base, hop):
        g = GlobalHash(17, "g")
        pids = np.arange(base, base + 20, dtype=np.uint64)
        arr = g.uniform_array(pids, hop)
        for i, pid in enumerate(range(base, base + 20)):
            assert arr[i] == g.uniform(hop, pid)

    def test_bits_array_matches_scalar(self):
        g = GlobalHash(23, "h")
        vals = np.arange(100, dtype=np.int64)
        arr = g.bits_array(8, vals, 999)
        for i in range(100):
            assert int(arr[i]) == g.bits(8, 999, i)

    @given(st.integers(1, 64), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_choice_array_matches_scalar(self, n, base):
        g = GlobalHash(29, "c")
        parts = np.arange(base, base + 30, dtype=np.int64)
        arr = g.choice_array(n, parts)
        for i, part in enumerate(range(base, base + 30)):
            assert int(arr[i]) == g.choice(n, part)

    def test_choice_array_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GlobalHash(0).choice_array(0, np.arange(3))

    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_uniform_lanes_matches_scalar(self, base, salt):
        g = GlobalHash(31, "u")
        lanes = np.arange(base, base + 30, dtype=np.uint64)
        arr = g.uniform_lanes(lanes, salt)
        for i, lane in enumerate(range(base, base + 30)):
            # uniform_lanes folds the per-lane part first, then the
            # shared part -- the (packet, hop) key order.
            assert arr[i] == g.uniform(lane, salt)


class TestReservoir:
    def test_hop_one_always_writes(self):
        g = GlobalHash(1, "g")
        assert all(reservoir_write(g, pid, 1) for pid in range(200))

    def test_carrier_in_range(self):
        g = GlobalHash(2, "g")
        for pid in range(200):
            assert 1 <= reservoir_carrier(g, pid, 7) <= 7

    def test_carrier_uniform(self):
        # The core §4.1 claim: each hop carries with probability 1/k.
        g = GlobalHash(3, "g")
        k, n = 5, 20000
        counts = collections.Counter(reservoir_carrier(g, pid, k) for pid in range(n))
        for hop in range(1, k + 1):
            assert abs(counts[hop] / n - 1 / k) < 0.02

    def test_carrier_array_matches_scalar(self):
        g = GlobalHash(4, "g")
        pids = np.arange(500, dtype=np.uint64)
        arr = reservoir_carrier_array(g, pids, 9)
        for pid in range(500):
            assert arr[pid] == reservoir_carrier(g, pid, 9)

    def test_bad_hop(self):
        g = GlobalHash(0)
        with pytest.raises(ValueError):
            reservoir_write(g, 1, 0)


class TestXorActing:
    def test_probability(self):
        g = GlobalHash(6, "g")
        k, p, n = 20, 0.25, 3000
        total = sum(len(xor_acting_hops(g, pid, k, p)) for pid in range(n))
        assert abs(total / (n * k) - p) < 0.02

    def test_deterministic(self):
        g = GlobalHash(6, "g")
        assert xor_acting_hops(g, 42, 10, 0.3) == xor_acting_hops(g, 42, 10, 0.3)

    def test_fast_variant_probability(self):
        # acting_hops_fast uses AND-ed bitvectors: p = 2^-t exactly.
        g = GlobalHash(8, "bv")
        k, t, n = 32, 3, 4000
        total = sum(len(acting_hops_fast(g, pid, k, t)) for pid in range(n))
        assert abs(total / (n * k) - 2**-t) < 0.02

    def test_fast_variant_range(self):
        g = GlobalHash(8, "bv")
        for pid in range(100):
            hops = acting_hops_fast(g, pid, 16, 2)
            assert all(1 <= h <= 16 for h in hops)
            assert len(set(hops)) == len(hops)

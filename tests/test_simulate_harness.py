"""Tests for the Monte-Carlo harnesses in repro.coding.simulate."""

import pytest

from repro.coding import (
    DistributedMessage,
    TrialStats,
    average_progress,
    baseline_scheme,
    decode_probability,
    decode_progress,
    hybrid_scheme,
    packets_to_decode,
)


class TestTrialStats:
    def test_mean_median(self):
        stats = TrialStats([1, 2, 3, 4, 100])
        assert stats.mean == 22
        assert stats.median == 3

    def test_percentiles(self):
        stats = TrialStats(list(range(1, 101)))
        assert stats.percentile(50) == 50
        assert stats.percentile(99) == 99
        assert stats.percentile(100) == 100

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            TrialStats([1]).percentile(150)


class TestProgressCurves:
    def test_progress_monotone_nonincreasing(self):
        msg = DistributedMessage(tuple(range(10)))
        curve = decode_progress(msg, baseline_scheme(), packets=150,
                                digest_bits=8, mode="raw")
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert curve[0] <= 10

    def test_average_progress_reaches_zero(self):
        msg = DistributedMessage(tuple(range(6)))
        curve = average_progress(msg, hybrid_scheme(6), packets=400,
                                 trials=5, digest_bits=8, mode="raw")
        assert curve[-1] == 0.0

    def test_decode_probability_monotone(self):
        msg = DistributedMessage(tuple(range(8)))
        grid = [10, 40, 80, 200]
        probs = decode_probability(msg, baseline_scheme(), grid, trials=15,
                                   digest_bits=8, mode="raw")
        assert all(a <= b + 1e-9 for a, b in zip(probs, probs[1:]))
        assert probs[-1] > 0.8

    def test_packets_to_decode_guard(self):
        msg = DistributedMessage(tuple(range(30)))
        with pytest.raises(RuntimeError):
            packets_to_decode(msg, baseline_scheme(), digest_bits=8,
                              mode="raw", max_packets=3)

    def test_different_seeds_different_counts(self):
        msg = DistributedMessage(tuple(range(12)))
        counts = {
            packets_to_decode(msg, baseline_scheme(), digest_bits=8,
                              mode="raw", seed=s)
            for s in range(8)
        }
        assert len(counts) > 1

"""Tests for the vectorised bulk encoder and lane-wise hash folds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import (
    DistributedMessage,
    PathEncoder,
    baseline_scheme,
    hybrid_scheme,
    multilayer_scheme,
)
from repro.hashing import GlobalHash, mix


class TestFoldLanes:
    @given(st.lists(st.integers(0, mix.MASK64), min_size=1, max_size=40),
           st.integers(0, mix.MASK64))
    @settings(max_examples=50)
    def test_matches_scalar_fold(self, accs, part):
        arr = mix.fold_lanes(np.array(accs, dtype=np.uint64), part)
        assert [int(v) for v in arr] == [mix.fold(a, part) for a in accs]

    def test_bits_lanes_matches_scalar(self):
        h = GlobalHash(9, "h")
        pids = np.arange(100, dtype=np.uint64)
        arr = h.bits_lanes(8, pids, 12345)
        for pid in range(100):
            assert int(arr[pid]) == h.bits(8, pid, 12345)

    def test_bits_lanes_width_checked(self):
        with pytest.raises(ValueError):
            GlobalHash(0).bits_lanes(0, np.arange(3), 1)

    @given(st.lists(st.tuples(st.integers(0, mix.MASK64),
                              st.integers(0, mix.MASK64)),
                    min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_fold_zip_matches_scalar(self, pairs):
        accs = np.array([a for a, _ in pairs], dtype=np.uint64)
        parts = np.array([p for _, p in pairs], dtype=np.uint64)
        arr = mix.fold_zip(accs, parts)
        assert [int(v) for v in arr] == [mix.fold(a, p) for a, p in pairs]

    def test_bits_zip_matches_scalar(self):
        h = GlobalHash(9, "h")
        pids = np.arange(100, dtype=np.uint64)
        blocks = np.arange(500, 600, dtype=np.int64)
        arr = h.bits_zip(8, pids, blocks)
        for i in range(100):
            assert int(arr[i]) == h.bits(8, i, 500 + i)

    def test_bits_zip_width_checked(self):
        with pytest.raises(ValueError):
            GlobalHash(0).bits_zip(65, np.arange(3), np.arange(3))


class TestEncodeMany:
    @pytest.mark.parametrize("scheme_factory,num_hashes", [
        (baseline_scheme, 1),
        (lambda: hybrid_scheme(8), 1),
        (lambda: multilayer_scheme(8), 2),
    ])
    def test_matches_scalar_encode(self, scheme_factory, num_hashes):
        uni = tuple(range(500, 600))
        msg = DistributedMessage(tuple(range(500, 508)), uni)
        enc = PathEncoder(msg, scheme_factory(), digest_bits=8,
                          num_hashes=num_hashes, seed=3)
        pids = np.arange(1, 501, dtype=np.uint64)
        bulk = enc.encode_many(pids)
        for i, pid in enumerate(pids):
            assert tuple(int(x) for x in bulk[i]) == enc.encode(int(pid))

    def test_shape(self):
        uni = tuple(range(30))
        msg = DistributedMessage((1, 2, 3), uni)
        enc = PathEncoder(msg, baseline_scheme(), digest_bits=4, num_hashes=2)
        out = enc.encode_many(np.arange(10))
        assert out.shape == (10, 2)
        assert out.max() < 16

    def test_raw_mode_rejected(self):
        msg = DistributedMessage((1, 2, 3))
        enc = PathEncoder(msg, baseline_scheme(), digest_bits=8, mode="raw")
        with pytest.raises(ValueError):
            enc.encode_many(np.arange(4))

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_property_equivalence(self, k, bits, seed):
        uni = tuple(range(100, 140))
        blocks = tuple(100 + (i * 7 + seed) % 40 for i in range(k))
        msg = DistributedMessage(blocks, uni)
        enc = PathEncoder(msg, multilayer_scheme(max(2, k)),
                          digest_bits=bits, seed=seed)
        pids = np.arange(1, 101, dtype=np.uint64)
        bulk = enc.encode_many(pids)
        for i in (0, 17, 63, 99):
            assert tuple(int(x) for x in bulk[i]) == enc.encode(int(pids[i]))

"""Impairment engine: models, composition, delivery scoring, pipeline.

Covers the PR-5 contract: impairment models are seed-deterministic and
composable (order respected), reordering is bounded per flow,
duplication+loss never corrupts flow-table accounting (batched ingest
of an impaired stream stays bit-identical to record-at-a-time ingest),
and the zero-impairment pipeline is bit-identical to the un-impaired
path end to end -- plus the decode-under-loss surface: coverage /
partial_path on consumers, coverage aggregates in snapshots, and the
loss-aware fields of ScenarioReport.
"""

import json
import math
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import DistributedMessage, PathEncoder, multilayer_scheme, pack_reps
from repro.collector import (
    Collector,
    congestion_consumer_factory,
    path_consumer_factory,
)
from repro.collector.consumers import PathDigestConsumer
from repro.replay import (
    Duplicate,
    GilbertElliott,
    IIDLoss,
    ReplayDriver,
    Reorder,
    TraceDataplane,
    build_trace,
    describe_models,
    impair_trace,
    plan_delivery,
    scenario_names,
    summarize_delivery,
)

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def models_all(seed=0):
    """One of each model at meaningful rates."""
    return [
        GilbertElliott(p_bad=0.02, p_good=0.2, seed=seed + 1),
        IIDLoss(0.1, seed=seed + 2),
        Reorder(depth=16, seed=seed + 3),
        Duplicate(0.05, lag=8, seed=seed + 4),
    ]


class TestModels:
    def test_seed_determinism(self):
        fids = np.repeat(np.arange(40), 25)
        a = plan_delivery(models_all(7), 1000, fids)
        b = plan_delivery(models_all(7), 1000, fids)
        assert np.array_equal(a, b)
        c = plan_delivery(models_all(8), 1000, fids)
        assert not np.array_equal(a, c)

    def test_composition_is_sequential_application(self):
        fids = np.arange(500) % 13
        loss, dup = IIDLoss(0.2, seed=1), Duplicate(0.1, seed=2)
        composed = plan_delivery([loss, dup], 500, fids)
        manual = dup.apply(loss.apply(np.arange(500), fids, 0), fids, 1)
        assert np.array_equal(composed, manual)

    def test_composition_order_matters(self):
        # loss-then-dup can never duplicate a dropped packet;
        # dup-then-loss can deliver one surviving copy.  At these rates
        # the two schedules differ with overwhelming probability.
        fids = np.zeros(2000, dtype=np.int64)
        a = plan_delivery([IIDLoss(0.3, seed=3), Duplicate(0.3, seed=4)],
                          2000, fids)
        b = plan_delivery([Duplicate(0.3, seed=4), IIDLoss(0.3, seed=3)],
                          2000, fids)
        assert a.shape != b.shape or not np.array_equal(a, b)

    def test_iid_loss_rate(self):
        rows = plan_delivery([IIDLoss(0.25, seed=0)], 20_000, None)
        rate = 1.0 - rows.size / 20_000
        assert 0.2 < rate < 0.3
        assert np.all(np.diff(rows) > 0)  # order preserved, no dups

    def test_iid_loss_edges(self):
        assert np.array_equal(
            plan_delivery([IIDLoss(0.0)], 100, None), np.arange(100)
        )
        assert plan_delivery([IIDLoss(1.0)], 100, None).size == 0
        with pytest.raises(ValueError):
            IIDLoss(1.5)

    def test_gilbert_elliott_is_bursty(self):
        n = 30_000
        rows = plan_delivery(
            [GilbertElliott(p_bad=0.01, p_good=0.2, seed=5)], n, None
        )
        dropped = np.setdiff1d(np.arange(n), rows)
        assert 0 < dropped.size < n // 2
        # Bursty: mean loss-run length must exceed i.i.d.'s ~1 by a
        # clear margin (the Bad state holds for ~1/p_good = 5 records).
        runs = np.split(dropped, np.flatnonzero(np.diff(dropped) != 1) + 1)
        mean_run = float(np.mean([r.size for r in runs]))
        assert mean_run > 2.0

    def test_gilbert_elliott_zero_is_identity(self):
        rows = plan_delivery(
            [GilbertElliott(p_bad=0.0, p_good=1.0, seed=1)], 500, None
        )
        assert np.array_equal(rows, np.arange(500))

    def test_reorder_displacement_is_bounded(self):
        n, depth = 5000, 12
        rows = plan_delivery([Reorder(depth=depth, seed=6)], n, None)
        assert rows.size == n and np.array_equal(np.sort(rows), np.arange(n))
        # A delivery may only be overtaken by rows < depth behind it:
        # every prefix's max original index is < position + depth.
        prefix_max = np.maximum.accumulate(rows)
        assert np.all(prefix_max - np.arange(n) < depth)

    def test_reorder_per_flow_bound(self):
        n, depth = 4000, 10
        fids = np.arange(n) % 7
        rows = plan_delivery([Reorder(depth=depth, prob=0.8, seed=9)], n, fids)
        for f in range(7):
            mine = rows[fids[rows] == f]
            # Within one flow's delivered subsequence, any inversion
            # pairs records < depth apart in the original stream.
            prefix_max = np.maximum.accumulate(mine)
            assert np.all(prefix_max - mine < depth)

    def test_duplicate_copies_trail_originals_within_lag(self):
        n, lag = 3000, 6
        rows = plan_delivery([Duplicate(0.2, lag=lag, seed=8)], n, None)
        assert rows.size > n
        dup_count = rows.size - n
        assert 0.1 * n < dup_count < 0.3 * n
        # Each duplicated row appears exactly twice, copy within lag
        # delivered positions of the original.
        positions = {}
        for pos, row in enumerate(rows.tolist()):
            positions.setdefault(row, []).append(pos)
        for row, ps in positions.items():
            assert len(ps) <= 2
            if len(ps) == 2:
                assert 0 < ps[1] - ps[0] <= lag + dup_count

    def test_describe_round_trip(self):
        descs = describe_models(models_all(3))
        assert len(descs) == 4
        assert any("gilbert-elliott" in d for d in descs)
        assert all("seed=" in d for d in descs)


class TestDeliverySummary:
    def test_counts_on_crafted_schedule(self):
        # 6 records; drop row 5, duplicate row 0, invert rows 2 and 3.
        fids = np.zeros(6, dtype=np.int64)
        rows = np.asarray([0, 0, 1, 3, 2, 4])
        s = summarize_delivery(6, rows, fids)
        assert s.offered == 6
        assert s.delivered == 6
        assert s.unique_delivered == 5
        assert s.dropped == 1
        assert s.duplicated == 1
        # One late delivery (row 2 after row 3) + the duplicate of row
        # 0 arriving after row 0 itself does not count (same index).
        assert s.reordered == 1
        assert s.delivery_rate == pytest.approx(5 / 6)

    def test_reorder_counted_per_flow(self):
        # Rows of *different* flows interleaving is not reordering:
        # flow 0 owns rows (0, 2), flow 1 owns rows (1, 3).
        fids = np.asarray([0, 1, 0, 1])
        rows = np.asarray([1, 0, 3, 2])  # per-flow order preserved
        assert summarize_delivery(4, rows, fids).reordered == 0
        rows = np.asarray([2, 1, 3, 0])  # flow 0 sees (2, 0): one late
        assert summarize_delivery(4, rows, fids).reordered == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.floats(0.0, 0.6))
    def test_summary_invariants(self, seed, rate):
        n = 800
        fids = np.arange(n) % 11
        rows = plan_delivery(
            [IIDLoss(rate, seed=seed), Duplicate(0.1, seed=seed + 1),
             Reorder(depth=9, seed=seed + 2)],
            n, fids,
        )
        s = summarize_delivery(n, rows, fids)
        assert s.delivered == rows.size
        assert s.unique_delivered + s.dropped == n
        assert s.delivered - s.duplicated == s.unique_delivered
        assert 0 <= s.reordered <= s.delivered


class TestImpairTrace:
    def test_materialised_trace_gathers_columns(self):
        trace = build_trace("incast", packets=1200, seed=0)
        models = models_all(2)
        rows = plan_delivery(models, len(trace), trace.flow_id)
        out = impair_trace(trace, models, name="x")
        assert out.name == "x"
        assert len(out) == rows.size
        assert np.array_equal(out.pid, trace.pid[rows])
        assert np.array_equal(out.flow_id, trace.flow_id[rows])
        assert out.paths == trace.paths and out.universe == trace.universe

    def test_zero_models_identity(self):
        trace = build_trace("hadoop", packets=600, seed=1)
        out = impair_trace(trace, [IIDLoss(0.0), Reorder(0), Duplicate(0.0)])
        for col in ("ts", "flow_id", "pid", "path_id", "size"):
            assert np.array_equal(getattr(out, col), getattr(trace, col))

    def test_variant_scenarios_registered_and_deterministic(self):
        base = scenario_names()
        every = scenario_names(variants=True)
        assert len(every) == 4 * len(base)
        for suffix in ("-lossy", "-reordered", "-bursty"):
            assert f"web-search{suffix}" in every
            assert f"web-search{suffix}" not in base
        a = build_trace("incast-lossy", packets=900, seed=5)
        b = build_trace("incast-lossy", packets=900, seed=5)
        assert np.array_equal(a.pid, b.pid) and len(a) < 900
        assert a.name == "incast-lossy"


class TestFlowTableAccountingUnderImpairment:
    """Duplication+loss never corrupts FlowTable state accounting."""

    def _cols(self, seed):
        n = 4000
        rng = np.random.default_rng(seed)
        fids = rng.integers(1, 60, size=n).astype(np.int64)
        rows = plan_delivery(
            [IIDLoss(0.2, seed=seed), Duplicate(0.15, lag=12, seed=seed + 1),
             Reorder(depth=20, seed=seed + 2)],
            n, fids,
        )
        return (
            fids[rows], np.arange(1, n + 1, dtype=np.int64)[rows],
            np.full(rows.size, 4, dtype=np.int64),
            rng.integers(0, 256, size=n).astype(np.int64)[rows],
        )

    @pytest.mark.parametrize("bounds", [
        {}, {"max_flows_per_shard": 5},
        {"max_flows_per_shard": 4, "ttl": 6.0},
    ])
    def test_batched_matches_scalar_on_impaired_stream(self, bounds):
        # Both collectors share an explicit per-batch clock (the repo's
        # scalar-vs-batched test convention): the record-faithful LRU
        # walk then replays scalar table ops exactly, duplicates, gaps
        # and reorder notwithstanding.
        fids, pids, hops, digs = self._cols(seed=3)
        scalar = Collector(
            congestion_consumer_factory(seed=0), num_shards=4, seed=0,
            **bounds,
        )
        batched = Collector(
            congestion_consumer_factory(seed=0), num_shards=4, seed=0,
            **bounds,
        )
        now = 0.0
        for lo in range(0, fids.size, 512):
            hi = min(lo + 512, fids.size)
            now += 1.0
            for i in range(lo, hi):
                scalar.ingest(int(fids[i]), int(pids[i]), int(hops[i]),
                              int(digs[i]), now=now)
            batched.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                 digs[lo:hi], now=now)
        s_dict = scalar.snapshot().as_dict()
        b_dict = batched.snapshot().as_dict()
        for d in (s_dict, b_dict):
            for shard in d["shards"]:
                shard.pop("batches")
        assert s_dict == b_dict
        # Accounting invariants hold regardless of bounds.
        for d in (s_dict, b_dict):
            assert d["records"] == fids.size
            assert d["state_bytes"] >= 0
            assert 0 <= d["coverage_sum"] <= d["flows"]
            for shard in d["shards"]:
                assert shard["created"] >= shard["flows"]
                assert shard["coverage_sum"] <= shard["flows"]

    def test_per_flow_record_counts_match_delivered(self):
        fids, pids, hops, digs = self._cols(seed=9)
        col = Collector(congestion_consumer_factory(seed=0), num_shards=2,
                        seed=0)
        col.ingest_batch(fids, pids, hops, digs)
        total = 0
        for shard in col.shards:
            for _, entry in shard.table.items():
                expected = int((fids == entry.flow_id).sum())
                assert entry.records == expected
                total += entry.records
        assert total == fids.size


class TestDecodeUnderLoss:
    def _consumer_roundtrip(self, mode, digest_bits, k=5, seed=4):
        topo_universe = list(range(20))
        path = [3, 7, 11, 15, 19][:k]
        value_bits = max(topo_universe).bit_length()
        enc = PathEncoder(
            DistributedMessage.from_path(
                path, topo_universe if mode == "hash" else None
            ),
            multilayer_scheme(k), digest_bits=digest_bits, mode=mode,
            seed=seed, value_bits=value_bits if mode == "fragment" else None,
        )
        consumer = PathDigestConsumer(
            topo_universe, digest_bits=digest_bits, seed=seed, mode=mode,
            value_bits=value_bits,
        )
        return enc, consumer, path

    @pytest.mark.parametrize("mode,bits", [
        ("hash", 8), ("raw", 8), ("fragment", 4),
    ])
    def test_modes_decode_through_consumer(self, mode, bits):
        enc, consumer, path = self._consumer_roundtrip(mode, bits)
        for pid in range(1, 400):
            consumer.consume(pid, len(path), pack_reps(enc.encode(pid), bits))
            if consumer.is_complete:
                break
        assert consumer.is_complete
        assert consumer.result() == path
        assert consumer.coverage == 1.0
        assert consumer.partial_path() == path

    @pytest.mark.parametrize("mode,bits", [
        ("hash", 8), ("raw", 8), ("fragment", 4),
    ])
    def test_partial_decode_is_well_defined(self, mode, bits):
        enc, consumer, path = self._consumer_roundtrip(mode, bits)
        # A handful of packets: typically not enough to finish.
        for pid in (5, 9, 11):
            consumer.consume(pid, len(path), pack_reps(enc.encode(pid), bits))
        cov = consumer.coverage
        assert 0.0 <= cov <= 1.0
        partial = consumer.partial_path()
        assert len(partial) == len(path)
        for hop, value in enumerate(partial):
            assert value is None or value == path[hop]
        # Coverage is defined as reportable hops / k, so it must agree
        # with partial_path() exactly -- fragment mode included.
        known = sum(1 for v in partial if v is not None)
        assert cov == known / len(path)

    def test_duplicates_only_reconfirm(self):
        enc, consumer, path = self._consumer_roundtrip("hash", 8)
        digests = {
            pid: pack_reps(enc.encode(pid), 8) for pid in range(1, 300)
        }
        for pid, digest in digests.items():
            consumer.consume(pid, len(path), digest)
            consumer.consume(pid, len(path), digest)  # duplicate delivery
            if consumer.is_complete:
                break
        assert consumer.is_complete and consumer.result() == path
        assert consumer.decode_errors == 0

    def test_consumer_rejects_bad_mode_config(self):
        with pytest.raises(ValueError):
            PathDigestConsumer(range(8), mode="sideways")
        with pytest.raises(ValueError):
            PathDigestConsumer(range(8), mode="raw", num_hashes=2)

    def test_snapshot_coverage_aggregates(self):
        trace = build_trace("web-search", packets=2500, seed=2)
        dataplane = TraceDataplane(trace, seed=2)
        digests = dataplane.encode_rows(np.arange(len(trace)))
        rows = plan_delivery([IIDLoss(0.5, seed=6)], len(trace),
                             trace.flow_id)
        col = Collector(
            path_consumer_factory(trace.universe, digest_bits=8, seed=2),
            num_shards=4, seed=2,
        )
        col.ingest_batch(trace.flow_id[rows], trace.pid[rows],
                         trace.hop_counts[rows], digests[rows])
        snap = col.snapshot()
        per_flow = [
            entry.consumer.coverage
            for shard in col.shards for _, entry in shard.table.items()
        ]
        assert snap.coverage_sum == pytest.approx(sum(per_flow))
        assert 0.0 < snap.mean_coverage <= 1.0
        d = snap.as_dict()
        assert d["mean_coverage"] == pytest.approx(snap.mean_coverage)
        # Idle collector: mean_coverage dumps as None (strict JSON,
        # ==-comparable), the property itself is NaN.
        idle = Collector(path_consumer_factory(trace.universe), num_shards=2)
        assert idle.snapshot().as_dict()["mean_coverage"] is None
        assert math.isnan(idle.snapshot().mean_coverage)


class TestDriverUnderImpairment:
    def test_zero_impairment_bit_identical(self):
        trace = build_trace("microburst", packets=2000, seed=1)
        zero = [IIDLoss(0.0, seed=1), GilbertElliott(0.0, 1.0, seed=2),
                Reorder(0, seed=3), Duplicate(0.0, seed=4)]
        plain = ReplayDriver(batch_size=512, seed=1).replay(trace)
        zeroed = ReplayDriver(batch_size=512, seed=1,
                              impairments=zero).replay(trace)
        for field in (
            "records", "flows", "batches", "path_records", "path_flows",
            "path_decoded", "path_correct", "path_resets",
            "congestion_records", "congestion_flows", "dropped_records",
            "duplicated_records", "reordered_records",
            "path_completed_under_loss",
        ):
            assert getattr(plain, field) == getattr(zeroed, field), field
        assert plain.path_coverage_mean == zeroed.path_coverage_mean
        assert zeroed.impairments and not plain.impairments

    def test_lossy_replay_reports_degradation(self):
        trace = build_trace("incast", packets=3000, seed=1)
        report = ReplayDriver(
            batch_size=512, seed=1,
            impairments=[IIDLoss(0.4, seed=2), Duplicate(0.05, seed=3)],
        ).replay(trace)
        assert report.offered_records == 3000
        assert report.dropped_records > 800
        assert report.duplicated_records > 30
        assert report.records == (
            3000 - report.dropped_records + report.duplicated_records
        )
        assert 0.5 < report.delivery_rate < 0.7
        # Incast flows are heavy: they complete despite 40% loss, and
        # every completion happened under loss.
        assert report.path_decoded == report.path_flows
        assert report.path_completed_under_loss == report.path_decoded
        assert report.path_accuracy == 1.0
        assert "delivered" in report.summary()

    def test_replay_level_override(self):
        trace = build_trace("incast", packets=1000, seed=0)
        drv = ReplayDriver(batch_size=512, seed=0)
        lossy = drv.replay(trace, impairments=[IIDLoss(0.3, seed=1)])
        assert lossy.dropped_records > 0
        clean = drv.replay(trace)
        assert clean.dropped_records == 0

    def test_full_drop_reports_nan_coverage(self):
        trace = build_trace("incast", packets=400, seed=0)
        report = ReplayDriver(batch_size=128, seed=0).replay(
            trace, impairments=[IIDLoss(1.0, seed=1)]
        )
        assert report.records == 0
        assert report.dropped_records == 400
        assert report.path_decoded == 0
        assert math.isnan(report.path_coverage_mean)

    def test_workers_path_accepts_impairments(self):
        trace = build_trace("incast", packets=1500, seed=0)
        serial = ReplayDriver(
            batch_size=512, seed=0,
            impairments=[IIDLoss(0.2, seed=5)],
        ).replay(trace)
        par = ReplayDriver(
            batch_size=512, seed=0, workers=2,
            impairments=[IIDLoss(0.2, seed=5)],
        ).replay(trace)
        for field in (
            "records", "path_records", "path_flows", "path_decoded",
            "dropped_records", "duplicated_records",
            "path_completed_under_loss",
        ):
            assert getattr(serial, field) == getattr(par, field), field
        assert serial.path_coverage_mean == par.path_coverage_mean

    def test_report_dict_is_strict_json_after_sanitize(self):
        sys.path.insert(0, str(BENCHMARKS))
        try:
            import benchlib
        finally:
            sys.path.pop(0)
        trace = build_trace("incast", packets=300, seed=0)
        report = ReplayDriver(batch_size=128, seed=0).replay(
            trace, impairments=[IIDLoss(1.0, seed=1)]
        )
        d = report.as_dict()
        assert math.isnan(d["path_coverage_mean"])
        dumped = json.dumps(benchlib.sanitize(d), allow_nan=False)
        assert json.loads(dumped)["path_coverage_mean"] is None


class TestBenchRegressionGate:
    def _benchlib(self):
        sys.path.insert(0, str(BENCHMARKS))
        try:
            import benchlib
        finally:
            sys.path.pop(0)
        return benchlib

    def test_compare_bench_passes_and_fails(self):
        benchlib = self._benchlib()
        baseline = {
            "tolerance": 0.4,
            "floors": {"B.json": {"a.b": 100.0, "c": 50.0}},
        }
        payloads = {"B.json": {"a": {"b": 90.0}, "c": 29.0}}
        failures, checked = benchlib.compare_bench(payloads, baseline)
        assert len(checked) == 2
        # 90 >= 100*0.6 passes; 29 < 50*0.6 fails.
        assert len(failures) == 1 and "c" in failures[0]

    def test_compare_bench_surfaces_missing_artifacts_and_paths(self):
        benchlib = self._benchlib()
        baseline = {"floors": {
            "missing.json": {"x": 1.0},
            "present.json": {"nope.nope": 1.0},
        }}
        failures, _ = benchlib.compare_bench(
            {"present.json": {"other": 2.0}}, baseline
        )
        assert len(failures) == 2
        assert any("artifact missing" in f for f in failures)
        assert any("not found" in f for f in failures)

    def test_committed_baseline_parses_and_covers_impair(self):
        root = Path(__file__).resolve().parent.parent
        with open(root / "BENCH_baseline.json") as fh:
            baseline = json.load(fh)
        assert 0.0 <= baseline["tolerance"] < 1.0
        assert "BENCH_impair.json" in baseline["floors"]
        for floors in baseline["floors"].values():
            for floor in floors.values():
                assert isinstance(floor, (int, float)) and floor > 0

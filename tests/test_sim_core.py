"""Tests for the DES core: events, links, network assembly, workloads."""

import random

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.net import fat_tree, linear_topology
from repro.sim import (
    EmpiricalCDF,
    INTTelemetry,
    Link,
    Network,
    PINTTelemetry,
    SimPacket,
    Simulator,
    hadoop_cdf,
    percentile,
    poisson_flows,
    web_search_cdf,
)
from repro.sim.packet import BASE_HEADER_BYTES


class TestSimulator:
    def test_event_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_ties(self):
        sim = Simulator()
        log = []
        sim.at(1.0, log.append, 1)
        sim.at(1.0, log.append, 2)
        sim.run()
        assert log == [1, 2]

    def test_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "x")
        sim.schedule(5.0, log.append, "y")
        sim.run(until=2.0)
        assert log == ["x"]
        assert sim.now == 2.0

    def test_no_past_scheduling(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)


class _Sink:
    def __init__(self):
        self.got = []

    def receive(self, pkt):
        self.got.append(pkt)


def _pkt(pid=1, payload=1000):
    return SimPacket(pid=pid, flow_id=1, seq=0, payload_bytes=payload)


class TestLink:
    def test_serialization_plus_prop_delay(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, "l", sink, rate_bps=1e6, prop_delay=0.01,
                    buffer_bytes=10_000)
        pkt = _pkt()
        link.enqueue(pkt)
        sim.run()
        wire = pkt.wire_bytes
        assert sim.now == pytest.approx(wire * 8 / 1e6 + 0.01)
        assert sink.got == [pkt]

    def test_fifo_back_to_back(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, "l", sink, 1e6, 0.0, 100_000)
        p1, p2 = _pkt(1), _pkt(2)
        link.enqueue(p1)
        link.enqueue(p2)
        sim.run()
        assert [p.pid for p in sink.got] == [1, 2]
        assert sim.now == pytest.approx(2 * p1.wire_bytes * 8 / 1e6)

    def test_drop_tail(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, "l", sink, 1e3, 0.0, buffer_bytes=1500)
        assert link.enqueue(_pkt(1)) is True       # starts transmitting
        assert link.enqueue(_pkt(2)) is True       # queued (1040 wire B)
        assert link.enqueue(_pkt(3)) is False      # buffer full
        assert link.drops == 1

    def test_counters(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, "l", sink, 1e6, 0.0, 100_000)
        link.enqueue(_pkt())
        sim.run()
        assert link.tx_packets == 1
        assert link.tx_bytes == 1000 + BASE_HEADER_BYTES


class TestTelemetryStamps:
    def test_int_grows_packet(self):
        sim = Simulator()
        sink = _Sink()
        telem = INTTelemetry(num_values=3)
        link = Link(sim, "l", sink, 1e6, 0.0, 100_000, telemetry=telem)
        pkt = _pkt()
        before = pkt.wire_bytes
        link.enqueue(pkt)
        sim.run()
        assert pkt.wire_bytes == before + 12
        assert len(pkt.int_records) == 1
        assert pkt.int_records[0].link_rate_bps == 1e6

    def test_int_skips_acks(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, "l", sink, 1e6, 0.0, 100_000,
                    telemetry=INTTelemetry(3))
        ack = SimPacket(pid=1, flow_id=1, seq=0, payload_bytes=0, is_ack=True)
        link.enqueue(ack)
        sim.run()
        assert ack.int_records == []

    def test_pint_fixed_size_and_digest(self):
        sim = Simulator()
        sink = _Sink()
        telem = PINTTelemetry(base_rtt=1e-3, frequency=1.0)
        link = Link(sim, "l", sink, 1e6, 0.0, 100_000, telemetry=telem)
        pkt = _pkt()
        pkt.fixed_overhead_bytes = telem.source_overhead()
        before = pkt.wire_bytes
        link.enqueue(pkt)
        sim.run()
        assert pkt.wire_bytes == before  # fixed-width: no growth
        assert link.ewma_util > 0.0

    def test_pint_frequency_selects_fraction(self):
        telem = PINTTelemetry(base_rtt=1e-3, frequency=1 / 16)
        hits = sum(telem.carries_query(pid) for pid in range(16000))
        assert 700 < hits < 1300

    def test_pint_ewma_rises_under_congestion(self):
        sim = Simulator()
        sink = _Sink()
        telem = PINTTelemetry(base_rtt=1e-3)
        link = Link(sim, "l", sink, 1e6, 0.0, 1_000_000, telemetry=telem)
        for pid in range(50):
            link.enqueue(_pkt(pid))
        sim.run()
        # Sustained full-rate arrivals: EWMA should approach/exceed ~1.
        assert link.ewma_util > 0.5


class TestNetworkAssembly:
    def test_links_both_directions(self):
        topo = fat_tree(4)
        net = Network(topo, Simulator())
        edge = next(iter(topo.graph.edges()))
        assert net.link(edge[0], edge[1]) is not net.link(edge[1], edge[0])

    def test_next_hops_move_closer(self):
        topo = fat_tree(4)
        net = Network(topo, Simulator())
        dst = topo.hosts[-1]
        node = topo.hosts[0]
        # walk greedily: must reach dst within the path length bound
        steps = 0
        while node != dst:
            node = net.next_hops(node, dst)[0]
            steps += 1
            assert steps <= 8
        assert node == dst

    def test_base_rtt_positive_and_monotone(self):
        topo = fat_tree(4)
        net = Network(topo, Simulator(), link_rate_bps=1e8)
        near = net.base_rtt(topo.hosts[0], topo.hosts[1])
        far = net.base_rtt(topo.hosts[0], topo.hosts[-1])
        assert 0 < near < far

    def test_pid_unique(self):
        topo = linear_topology(2)
        # attach two fake hosts for Network's host logic not needed here
        net = Network(fat_tree(2), Simulator())
        pids = {net.new_pid() for _ in range(100)}
        assert len(pids) == 100


class TestWorkload:
    def test_cdf_deciles_respected(self):
        cdf = web_search_cdf()
        rng = random.Random(0)
        samples = sorted(cdf.sample(rng) for _ in range(4000))
        med = samples[len(samples) // 2]
        # Median decile is 73K; log-interp puts the median in its decade.
        assert 20_000 < med < 200_000

    def test_hadoop_mostly_tiny(self):
        cdf = hadoop_cdf()
        rng = random.Random(1)
        small = sum(cdf.sample(rng) < 1000 for _ in range(2000))
        assert small > 1000  # 60% of Hadoop flows are < 1KB

    def test_scaled_cdf(self):
        assert web_search_cdf(0.1).mean(2000) < web_search_cdf(1.0).mean(2000)

    def test_poisson_load_calibration(self):
        cdf = hadoop_cdf()
        rng = random.Random(2)
        hosts = list(range(8))
        flows = poisson_flows(hosts, cdf, load=0.5, host_rate_bps=1e8,
                              duration=0.5, rng=rng)
        offered = sum(f.size_bytes for f in flows) * 8 / 0.5
        target = 0.5 * 8 * 1e8
        assert 0.5 * target < offered < 1.8 * target

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_flows([1], hadoop_cdf(), 0.5, 1e8, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            poisson_flows([1, 2], hadoop_cdf(), 0.0, 1e8, 1.0, random.Random(0))

    def test_cdf_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.5)], min_size=10)  # doesn't end at 1
        with pytest.raises(ValueError):
            EmpiricalCDF([], min_size=10)

    def test_sample_stream_pinned(self):
        # The scalar stream is a compatibility surface: seeded
        # workloads must not change when the sampler grows new APIs.
        cdf = web_search_cdf()
        rng = random.Random(0)
        assert [cdf.sample(rng) for _ in range(6)] == [
            3004708, 1487443, 54048, 25397, 81646, 50942,
        ]

    def test_sizes_from_uniform_matches_scalar(self):
        class _Scripted:
            def __init__(self, u):
                self._u = u

            def random(self):
                return self._u

        for cdf in (web_search_cdf(), hadoop_cdf(), web_search_cdf(0.03)):
            u = np.random.default_rng(5).random(500)
            vec = cdf.sizes_from_uniform(u)
            assert vec.tolist() == [
                cdf.sample(_Scripted(float(x))) for x in u
            ]

    def test_sample_n_deterministic_and_in_range(self):
        cdf = hadoop_cdf()
        a = cdf.sample_n(400, np.random.default_rng(3))
        b = cdf.sample_n(400, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert a.min() >= 1
        assert a.max() <= 10_000_000
        with pytest.raises(ValueError):
            cdf.sample_n(-1, np.random.default_rng(0))


class TestPercentile:
    def test_basics(self):
        assert percentile([1, 2, 3, 4], 50) == 2
        assert percentile([1, 2, 3, 4], 100) == 4

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestOrphanPackets:
    def test_torn_down_flow_drops_gracefully(self):
        """In-flight packets of a removed flow are dropped and counted."""
        from repro.sim.transport import Flow

        topo = fat_tree(4)
        net = Network(topo, Simulator(), link_rate_bps=1e6)
        Flow(net, flow_id=1, src_host=topo.hosts[0], dst_host=topo.hosts[-1],
             size_bytes=20_000, start_time=0.0, transport="reno")
        # Tear the flow down mid-run, while packets are in the fabric.
        net.sim.schedule(0.05, net.flows.pop, 1)
        net.sim.run(until=1.0)
        assert 1 not in net.flows
        assert net.orphan_drops > 0

    def test_destination_none_for_unknown_flow(self):
        net = Network(fat_tree(4), Simulator())
        pkt = SimPacket(pid=1, flow_id=999, seq=0, payload_bytes=100)
        assert net.packet_destination(pkt) is None


class TestCDFMean:
    def test_exact_matches_monte_carlo(self):
        """Closed-form log-linear segment mean agrees with sampling."""
        for cdf in (web_search_cdf(), hadoop_cdf(), web_search_cdf(0.1)):
            exact = cdf.mean()
            mc = cdf.mean(samples=40_000, seed=3, method="monte-carlo")
            assert exact == pytest.approx(mc, rel=0.05)

    def test_exact_is_deterministic(self):
        cdf = hadoop_cdf()
        assert cdf.mean() == cdf.mean(method="exact", seed=123)

    def test_sampling_args_select_monte_carlo(self):
        # Passing samples/seed without a method means the caller wants
        # the sampling estimator those arguments configure.
        cdf = hadoop_cdf()
        assert cdf.mean(samples=500, seed=1) == cdf.mean(
            samples=500, seed=1, method="monte-carlo"
        )
        assert cdf.mean(samples=500, seed=1) != cdf.mean()

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            web_search_cdf().mean(method="bogus")

    def test_degenerate_segment(self):
        # A flat segment (s1 == s0) must not divide by log(1) == 0.
        cdf = EmpiricalCDF([(100, 0.5), (100, 1.0)], min_size=100)
        assert cdf.mean() == pytest.approx(100.0)

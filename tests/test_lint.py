"""Tests for repro.lint: corpus-driven rules, suppressions, CLI, ratchet.

Every rule is exercised against ≥1 known-bad and ≥1 known-good fixture
from ``tests/lint_corpus/`` (excluded from normal walks; linted here by
naming files explicitly with ``force_domain="lib"``).  The self-check
test is the acceptance criterion itself: the checker must be clean over
``src benchmarks examples`` at HEAD.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    all_rules,
    classify_domain,
    lint_file,
    load_config,
    parse_suppressions,
    run_ratchet,
)

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "lint_corpus"
CONFIG = load_config(explicit=REPO / "pyproject.toml")

RULE_IDS = [cls.id for cls in all_rules()]


def corpus_findings(name, config=CONFIG, select=None):
    return lint_file(CORPUS / name, config, REPO,
                     select=select, force_domain="lib")


def run_cli(*args, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


# -- registry ----------------------------------------------------------------

def test_registry_has_the_eight_rules():
    assert RULE_IDS == [f"R00{i}" for i in range(1, 9)]


def test_rules_have_docs_and_domains():
    for cls in all_rules():
        assert cls.name and cls.description and cls.domains


# -- corpus: every rule has a bad and a good fixture -------------------------

#: Rules whose fixtures lint meaningfully under the committed config.
PLAIN_RULES = ["R001", "R002", "R003", "R004", "R005", "R006", "R007"]


@pytest.mark.parametrize("rule", PLAIN_RULES)
def test_known_bad_fixture_fires(rule):
    findings = corpus_findings(f"bad_{rule.lower()}.py")
    assert {f.rule for f in findings} == {rule}
    assert len(findings) >= 1


@pytest.mark.parametrize("rule", PLAIN_RULES)
def test_known_good_fixture_is_clean(rule):
    assert corpus_findings(f"good_{rule.lower()}.py") == []


def _r008_config(name):
    return dataclasses.replace(CONFIG, fork_modules=(f"lint_corpus/{name}",))


def test_r008_bad_fixture_fires_when_module_is_fork_based():
    cfg = _r008_config("bad_r008.py")
    findings = corpus_findings("bad_r008.py", config=cfg)
    assert {f.rule for f in findings} == {"R008"}
    assert len(findings) == 2  # Thread + ThreadPoolExecutor


def test_r008_good_fixture_is_clean():
    assert corpus_findings("good_r008.py",
                           config=_r008_config("good_r008.py")) == []


def test_r008_silent_outside_fork_modules():
    # Same bad file, but not listed in fork-modules: out of scope.
    assert corpus_findings("bad_r008.py") == []


def test_r008_shm_create_fires_outside_shm_modules():
    # The shm prong needs no special config: the corpus file is not on
    # the shm-modules allowlist, so both create sites (kw + positional)
    # fire under the committed config.
    findings = corpus_findings("bad_r008_shm.py")
    assert {f.rule for f in findings} == {"R008"}
    assert len(findings) == 2
    assert all("create=True" in f.message for f in findings)


def test_r008_shm_attach_is_clean():
    assert corpus_findings("good_r008_shm.py") == []


def test_r008_shm_create_allowed_inside_shm_modules():
    cfg = dataclasses.replace(
        CONFIG, shm_modules=("lint_corpus/bad_r008_shm.py",))
    assert corpus_findings("bad_r008_shm.py", config=cfg) == []


def test_bad_fixtures_carry_precise_lines():
    findings = corpus_findings("bad_r002.py")
    lines = sorted(f.line for f in findings)
    text = (CORPUS / "bad_r002.py").read_text().splitlines()
    for ln in lines:
        assert "time." in text[ln - 1] or "datetime" in text[ln - 1]


# -- domains -----------------------------------------------------------------

def test_domain_classification():
    assert classify_domain("src/repro/obs/metrics.py") == "lib"
    assert classify_domain("benchmarks/bench_pipeline.py") == "bench"
    assert classify_domain("examples/demo.py") == "examples"
    assert classify_domain("tests/test_lint.py") == "tests"


def test_rules_do_not_fire_outside_their_domains():
    # A wall-clock call is fine in a test file: R002 is lib-only.
    findings = lint_file(CORPUS / "bad_r002.py", CONFIG, REPO,
                         force_domain="tests")
    assert findings == []


# -- suppressions ------------------------------------------------------------

def test_suppression_with_reason_silences_the_finding():
    assert corpus_findings("sup_valid.py") == []


def test_suppression_without_reason_does_not_suppress():
    findings = corpus_findings("sup_noreason.py")
    rules = [f.rule for f in findings]
    assert "R005" in rules          # original finding survives
    assert "R000" in rules          # and the bad suppression is flagged
    assert any("missing required reason" in f.message for f in findings)


def test_unused_suppression_is_flagged():
    findings = corpus_findings("sup_unused.py")
    assert [f.rule for f in findings] == ["R000"]
    assert "unused suppression" in findings[0].message


def test_unknown_rule_suppression_is_flagged():
    findings = corpus_findings("sup_unknown.py")
    assert [f.rule for f in findings] == ["R000"]
    assert "unknown rule" in findings[0].message


def test_parse_suppressions_grammar():
    src = "x = 1  # repro-lint: disable=R001,R002 reason=because physics\n"
    (sup,) = parse_suppressions(src)
    assert sup.line == 1
    assert sup.rules == ("R001", "R002")
    assert sup.reason == "because physics"
    assert sup.valid
    assert parse_suppressions("x = 1  # a normal comment\n") == []


def test_unused_suppression_not_reported_for_inactive_rules():
    # Under --select R001, an R005 suppression never had a chance to
    # match; it must not be called stale.
    findings = corpus_findings("sup_unused.py", select=["R001"])
    assert findings == []


# -- CLI ---------------------------------------------------------------------

def test_cli_exit_codes():
    assert run_cli(str(CORPUS / "good_r001.py"), "--force-domain", "lib").returncode == 0
    assert run_cli(str(CORPUS / "bad_r001.py"), "--force-domain", "lib").returncode == 1
    assert run_cli("no/such/path.py").returncode == 2
    assert run_cli().returncode == 2  # no paths


def test_cli_json_schema():
    proc = run_cli(str(CORPUS / "bad_r001.py"), "--force-domain", "lib",
                   "--json")
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["version"] == JSON_SCHEMA_VERSION
    assert report["checked_files"] == 1
    assert set(report["counts"]) == {"R001"}
    for f in report["findings"]:
        assert set(f) == {"rule", "path", "line", "col", "message"}
        assert f["rule"] == "R001"
        assert f["line"] >= 1


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in RULE_IDS:
        assert rule in proc.stdout


def test_cli_select_limits_rules():
    proc = run_cli(str(CORPUS / "bad_r002.py"), "--force-domain", "lib",
                   "--select", "R001")
    assert proc.returncode == 0  # R002 findings exist, but not selected


def test_corpus_is_excluded_from_directory_walks():
    # Walking tests/ must skip the (deliberately bad) corpus...
    proc = run_cli("tests", "--json")
    report = json.loads(proc.stdout)
    assert not any("lint_corpus" in f["path"] for f in report["findings"])
    # ...while naming a fixture explicitly always lints it.
    assert run_cli(str(CORPUS / "bad_r001.py"),
                   "--force-domain", "lib").returncode == 1


def test_self_check_repo_is_clean_at_head():
    """The acceptance criterion: src/benchmarks/examples lint clean."""
    proc = run_cli("src", "benchmarks", "examples")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_every_committed_suppression_carries_a_reason():
    for path in (REPO / "src").rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        for sup in parse_suppressions(path.read_text(encoding="utf-8")):
            assert sup.valid, f"reason-less suppression in {path}:{sup.line}"


# -- mypy ratchet ------------------------------------------------------------

def test_ratchet_fails_when_manifest_missing(tmp_path):
    cfg = dataclasses.replace(CONFIG, typed_manifest="nope.txt")
    assert run_ratchet(cfg, tmp_path) == 1


def test_ratchet_fails_below_floor(tmp_path):
    (tmp_path / "typed_modules.txt").write_text("repro.exceptions\n")
    assert run_ratchet(CONFIG, tmp_path) == 1  # 1 module < floor 6


def test_ratchet_fails_on_phantom_module(tmp_path):
    (tmp_path / "typed_modules.txt").write_text(
        "\n".join(f"repro.phantom{i}" for i in range(6)) + "\n"
    )
    (tmp_path / "src").mkdir()
    assert run_ratchet(CONFIG, tmp_path) == 1


def test_ratchet_on_real_manifest():
    """Floor + existence always pass; with mypy installed (CI), the
    listed modules must also type-check -- same gate as the workflow."""
    assert run_ratchet(CONFIG, REPO) == 0


def test_ratchet_cli_exit_matches_mypy_presence():
    proc = run_cli("--mypy-ratchet")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert ("mypy-ratchet: OK" in proc.stdout
            or "mypy-ratchet: SKIP" in proc.stdout)

"""Tests for the decoding extensions: topology-aware inference and the
fast bit-vector codec (§4.2 "Reducing the Decoding Complexity")."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import (
    DistributedMessage,
    FastXORDecoder,
    FastXOREncoder,
    HashDecoder,
    PathEncoder,
    make_decoder,
    multilayer_scheme,
    packet_count_distribution,
    packets_to_decode,
)
from repro.exceptions import DecodingError
from repro.net import linear_topology, us_carrier


class TestAdjacencyInference:
    def test_roundtrip_on_chain(self):
        topo = linear_topology(12)
        path = topo.switch_path(0, 11)
        msg = DistributedMessage.from_path(path, topo.switch_universe())
        n = packets_to_decode(
            msg, multilayer_scheme(12), digest_bits=4,
            adjacency=topo.switch_adjacency(),
        )
        assert n > 0

    def test_adjacency_reduces_packets(self):
        topo = us_carrier()
        rng = random.Random(3)
        src, dst = topo.pair_at_distance(20, rng)
        path = topo.switch_path(src, dst)
        msg = DistributedMessage.from_path(path, topo.switch_universe())
        plain = packet_count_distribution(
            msg, multilayer_scheme(10), trials=10, digest_bits=4
        )
        aware = packet_count_distribution(
            msg, multilayer_scheme(10), trials=10, digest_bits=4,
            adjacency=topo.switch_adjacency(),
        )
        assert aware.mean < plain.mean

    def test_decoded_path_is_correct(self):
        topo = us_carrier()
        src, dst = topo.pair_at_distance(12, random.Random(5))
        path = topo.switch_path(src, dst)
        msg = DistributedMessage.from_path(path, topo.switch_universe())
        enc = PathEncoder(msg, multilayer_scheme(10), digest_bits=8)
        dec = make_decoder(enc, adjacency=topo.switch_adjacency())
        pid = 0
        while not dec.is_complete:
            pid += 1
            dec.observe(pid, enc.encode(pid))
        assert dec.path() == path

    def test_chain_infers_interior_hops_for_free(self):
        # On a pure chain, decoding hops i-1 and i+1 forces hop i: the
        # decoder should finish with fewer packets than hops that were
        # individually pinned by packets.
        topo = linear_topology(30)
        path = topo.switch_path(0, 29)
        msg = DistributedMessage.from_path(path, topo.switch_universe())
        plain = packet_count_distribution(
            msg, multilayer_scheme(30), trials=8, digest_bits=8
        )
        aware = packet_count_distribution(
            msg, multilayer_scheme(30), trials=8, digest_bits=8,
            adjacency=topo.switch_adjacency(),
        )
        # A chain is maximally constrained: huge savings expected.
        assert aware.mean < plain.mean * 0.8

    def test_inconsistent_adjacency_raises(self):
        # Claim the universe is fully disconnected: once one hop
        # decodes, its neighbours have no consistent candidates.
        universe = (1, 2, 3)
        msg = DistributedMessage((1, 2, 3), universe)
        enc = PathEncoder(msg, multilayer_scheme(3), digest_bits=8)
        dec = HashDecoder(
            3, universe, multilayer_scheme(3), 8,
            adjacency={1: set(), 2: set(), 3: set()},
        )
        with pytest.raises(DecodingError):
            for pid in range(1, 500):
                dec.observe(pid, enc.encode(pid))


class TestFastXORCodec:
    def test_roundtrip(self):
        blocks = tuple((i * 29 + 5) % 256 for i in range(20))
        msg = DistributedMessage(blocks)
        enc = FastXOREncoder(msg, digest_bits=8, seed=2)
        dec = FastXORDecoder(20, digest_bits=8, seed=2)
        pid = 0
        while not dec.is_complete:
            pid += 1
            dec.observe(pid, enc.encode(pid))
            assert pid < 10000
        assert dec.path() == list(blocks)

    def test_acting_probability_is_power_of_two(self):
        msg = DistributedMessage(tuple(range(32)))
        enc = FastXOREncoder(msg, digest_bits=8, log2_inv_p=3, seed=1)
        total = sum(len(enc.xor_acting(pid)) for pid in range(4000))
        assert total / (4000 * 32) == pytest.approx(2**-3, rel=0.15)

    def test_encoder_decoder_agree_on_layers(self):
        msg = DistributedMessage(tuple(range(10)))
        enc = FastXOREncoder(msg, seed=7)
        dec = FastXORDecoder(10, seed=7)
        for pid in range(200):
            assert enc.is_baseline(pid) == dec.is_baseline(pid)
            assert enc.xor_acting(pid) == dec.xor_acting(pid)

    def test_wide_blocks_rejected(self):
        with pytest.raises(ValueError):
            FastXOREncoder(DistributedMessage((1 << 20,)), digest_bits=8)

    def test_incomplete_raises(self):
        with pytest.raises(DecodingError):
            FastXORDecoder(5).path()

    def test_packet_cost_comparable_to_plain_scheme(self):
        k = 25
        msg = DistributedMessage(tuple(range(k)))
        counts = []
        for seed in range(10):
            enc = FastXOREncoder(msg, seed=seed)
            dec = FastXORDecoder(k, seed=seed)
            pid = 0
            while not dec.is_complete:
                pid += 1
                dec.observe(pid, enc.encode(pid))
            counts.append(pid)
        mean = sum(counts) / len(counts)
        # Within the Baseline ballpark (k ln k ~ 80): the fast variant
        # trades a constant for per-packet speed, not correctness.
        assert mean < 220

    @given(st.integers(2, 24), st.integers(0, 4))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, k, seed):
        blocks = tuple((i * 13 + seed) % 200 for i in range(k))
        msg = DistributedMessage(blocks)
        enc = FastXOREncoder(msg, seed=seed)
        dec = FastXORDecoder(k, seed=seed)
        for pid in range(1, 20000):
            dec.observe(pid, enc.encode(pid))
            if dec.is_complete:
                break
        assert dec.path() == list(blocks)


class TestEncoderStepEquivalence:
    @given(st.integers(1, 10), st.integers(0, 4))
    @settings(max_examples=20, deadline=None)
    def test_step_fold_equals_encode(self, k, seed):
        # The per-switch step() folded along the path must equal the
        # whole-path encode() -- the switch semantics are the paper's.
        blocks = tuple((i * 31 + 7) % 256 for i in range(k))
        msg = DistributedMessage(blocks)
        enc = PathEncoder(msg, multilayer_scheme(max(2, k)), 8, "raw", seed=seed)
        for pid in range(1, 60):
            digest = (0,)
            for hop in range(1, k + 1):
                digest = enc.step(pid, hop, digest)
            assert digest == enc.encode(pid)

"""Fault-tolerant collection: checkpoint/restore, journal, supervision.

Covers the PR-8 contract end to end:

* the checkpoint wire format round-trips and rejects, with typed
  errors, exactly the artifacts a crash-during-write produces
  (truncation, bad magic, version skew, CRC mismatch);
* ``restore(checkpoint(c)) == c`` at snapshot *and* per-flow-answer
  granularity, for every consumer kind, including LRU/TTL eviction
  order surviving the round trip (continued-ingest equality);
* the supervised :class:`ParallelCollector` survives SIGKILL, SIGSTOP
  and crash-timing edge cases (mid-batch, during a checkpoint write,
  before the first checkpoint) with merged snapshots bit-identical to
  a fault-free run;
* an undersized journal degrades gracefully -- shards marked, records
  lost accounted, no exception -- or raises when configured to;
* ``close()`` escalates SIGTERM -> SIGKILL on a stopped worker and
  reports it instead of leaking a zombie.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.collector import (
    CHECKPOINT_VERSION,
    Collector,
    ParallelCollector,
    RecoveryStats,
    Snapshot,
    capture_checkpoint,
    congestion_consumer_factory,
    latency_consumer_factory,
    path_consumer_factory,
    read_checkpoint,
    restore_collector,
    write_checkpoint,
)
from repro.collector.recovery import (
    BatchJournal,
    decode_checkpoint,
    encode_checkpoint,
    validate_checkpoint,
)
from repro.exceptions import (
    CheckpointError,
    CheckpointVersionError,
    JournalOverflowError,
    RecoveryError,
    RestoreError,
)
from repro.faults import (
    FaultPlan,
    corrupt_checkpoint,
    drop_checkpoint,
    kill_worker,
    wedge_worker,
)

UNIVERSE = list(range(1, 33))


def make_cols(n=3000, flows=50, seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, flows, n),
        np.arange(1, n + 1),
        rng.integers(2, 7, n),
        rng.integers(0, 256, n),
    )


def feed(col, cols, batch=500, lo=0, hi=None):
    fids, pids, hops, digs = cols
    hi = len(fids) if hi is None else hi
    now = float(lo // batch)
    for b_lo in range(lo, hi, batch):
        b_hi = min(b_lo + batch, hi)
        now += 1.0
        col.ingest_batch(fids[b_lo:b_hi], pids[b_lo:b_hi],
                         hops[b_lo:b_hi], digs[b_lo:b_hi], now=now)
    return now


FACTORIES = {
    "congestion": lambda: congestion_consumer_factory(seed=3),
    "latency": lambda: latency_consumer_factory(seed=3),
    "path": lambda: path_consumer_factory(
        UNIVERSE, digest_bits=8, num_hashes=1, seed=3
    ),
}


# -- checkpoint format ------------------------------------------------------

class TestCheckpointFormat:
    def test_encode_decode_round_trip(self):
        state = {"a": 1, "nested": {"b": [1, 2, 3]}}
        assert decode_checkpoint(encode_checkpoint(state)) == state

    def test_short_header_rejected(self):
        with pytest.raises(CheckpointError, match="truncated"):
            validate_checkpoint(b"PC")

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_checkpoint({}))
        blob[0] ^= 0xFF
        with pytest.raises(CheckpointError, match="magic"):
            validate_checkpoint(bytes(blob))

    def test_version_skew_rejected_with_version(self):
        blob = bytearray(encode_checkpoint({}))
        blob[4:6] = (CHECKPOINT_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(CheckpointVersionError) as exc:
            validate_checkpoint(bytes(blob), worker=3)
        assert exc.value.version == CHECKPOINT_VERSION + 1
        assert exc.value.worker == 3

    def test_truncated_payload_rejected(self):
        blob = encode_checkpoint({"k": list(range(100))})
        with pytest.raises(CheckpointError, match="truncated"):
            validate_checkpoint(blob[: len(blob) // 2])

    def test_flipped_payload_byte_fails_crc(self):
        blob = bytearray(encode_checkpoint({"k": 1}))
        blob[-1] ^= 0x01
        with pytest.raises(CheckpointError, match="CRC"):
            validate_checkpoint(bytes(blob))

    def test_version_error_is_checkpoint_error(self):
        # One except-clause catches the whole reject surface.
        assert issubclass(CheckpointVersionError, CheckpointError)
        assert issubclass(CheckpointError, RecoveryError)

    def test_file_write_is_atomic_and_readable(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(path, encode_checkpoint({"x": 7}))
        assert read_checkpoint(path) == {"x": 7}
        assert not os.path.exists(path + ".tmp")
        # Overwrite replaces wholesale.
        write_checkpoint(path, encode_checkpoint({"x": 8}))
        assert read_checkpoint(path) == {"x": 8}

    def test_torn_file_rejected(self, tmp_path):
        path = str(tmp_path / "torn.ckpt")
        blob = encode_checkpoint({"k": list(range(200))})
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) - 10])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


# -- restore(checkpoint(c)) == c -------------------------------------------

class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("kind", sorted(FACTORIES))
    def test_round_trip_identity(self, kind):
        cols = make_cols()
        col = Collector(FACTORIES[kind](), num_shards=4, seed=1)
        feed(col, cols)
        blob = capture_checkpoint(col, worker=0)
        fresh = Collector(FACTORIES[kind](), num_shards=4, seed=1)
        restore_collector(fresh, blob)
        assert fresh.snapshot().as_dict() == col.snapshot().as_dict()
        for fid in np.unique(cols[0]).tolist():
            assert fresh.result(fid) == col.result(fid)

    @pytest.mark.parametrize("kind", sorted(FACTORIES))
    def test_continued_ingest_equality(self, kind):
        # The stronger property: not just equal *now*, but equal under
        # every future ingest -- LRU order, TTL bookkeeping and
        # generation counters must all have survived the round trip.
        cols = make_cols(n=4000)
        col = Collector(FACTORIES[kind](), num_shards=4, seed=1,
                        max_flows_per_shard=6, ttl=3.0)
        feed(col, cols, hi=2000)
        blob = capture_checkpoint(col, worker=0)
        fresh = Collector(FACTORIES[kind](), num_shards=4, seed=1,
                          max_flows_per_shard=6, ttl=3.0)
        restore_collector(fresh, blob)
        feed(col, cols, lo=2000)
        feed(fresh, cols, lo=2000)
        assert fresh.snapshot().as_dict() == col.snapshot().as_dict()
        for fid in np.unique(cols[0]).tolist():
            assert fresh.result(fid) == col.result(fid)

    def test_restore_rejects_shard_count_mismatch(self):
        col = Collector(congestion_consumer_factory(), num_shards=4)
        blob = capture_checkpoint(col)
        other = Collector(congestion_consumer_factory(), num_shards=8)
        with pytest.raises(RestoreError):
            restore_collector(other, blob)

    def test_metrics_sidecar_rides_along(self):
        col = Collector(congestion_consumer_factory(), num_shards=2)
        blob = capture_checkpoint(col, metrics={"m": 1}, worker=5)
        state = decode_checkpoint(blob)
        assert state["metrics"] == {"m": 1}
        assert state["worker"] == 5


# -- journal ----------------------------------------------------------------

class TestBatchJournal:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BatchJournal(0)

    def test_append_within_capacity_never_evicts(self):
        j = BatchJournal(3)
        for i in range(3):
            assert j.append(("m", i), 10, {i: 10}) is None
        assert j.full and len(j) == 3 and j.records == 30

    def test_eviction_accrues_per_shard_loss(self):
        j = BatchJournal(2)
        j.append(("a",), 5, {0: 3, 1: 2})
        j.append(("b",), 4, {1: 4})
        evicted = j.append(("c",), 6, {2: 6})
        assert evicted is not None and evicted.msg == ("a",)
        assert j.dropped_batches == 1
        assert j.dropped_records == 5
        assert j.dropped_by_shard == {0: 3, 1: 2}

    def test_clear_and_clear_dropped_are_separate(self):
        j = BatchJournal(1)
        j.append(("a",), 1, {0: 1})
        j.append(("b",), 1, {0: 1})  # evicts a
        j.clear()
        assert len(j) == 0
        assert j.dropped_by_shard == {0: 1}  # ledger survives clear()
        j.clear_dropped()
        assert j.dropped_by_shard == {}

    def test_replay_is_fifo(self):
        j = BatchJournal(4)
        for i in range(4):
            j.append(("m", i), 1, {0: 1})
        assert j.replay_messages() == [("m", i) for i in range(4)]


# -- supervised recovery ----------------------------------------------------

def run_pair(cols, batch=300, faults=None, **sup_kw):
    """Feed identical batches to a serial and a supervised parallel
    collector; return both plus the parallel snapshot."""
    factory = FACTORIES["path"]
    serial = Collector(factory(), num_shards=8, seed=1)
    feed(serial, cols, batch=batch)
    with ParallelCollector(
        factory(), workers=2, num_shards=8, seed=1,
        checkpoint_every=sup_kw.pop("checkpoint_every", 4),
        faults=faults, **sup_kw,
    ) as par:
        feed(par, cols, batch=batch)
        par.drain()
        snap = par.snapshot()
        results = {
            int(f): par.result(int(f)) for f in np.unique(cols[0])
        }
    return serial, snap, results


class TestSupervisedRecovery:
    def test_kill_mid_replay_bit_identical(self):
        cols = make_cols()
        plan = FaultPlan([kill_worker(1, at_batch=3)])
        serial, snap, results = run_pair(cols, faults=plan)
        assert plan.fired == [("kill", "worker=1", 3)]
        assert snap.recovery.restarts == 1
        assert snap.recovery.replayed_batches > 0
        assert snap.recovery.records_lost == 0
        assert snap.as_dict() == serial.snapshot().as_dict()
        for fid, res in results.items():
            assert res == serial.result(fid)

    def test_wedged_worker_recovered_by_timeout(self):
        cols = make_cols(n=2000)
        plan = FaultPlan([wedge_worker(0, at_batch=2)])
        serial, snap, results = run_pair(
            cols, faults=plan, wedge_timeout=1.0,
        )
        assert ("wedge", "worker=0", 2) in plan.fired
        assert snap.recovery.restarts >= 1
        assert snap.as_dict() == serial.snapshot().as_dict()

    def test_dies_before_first_checkpoint(self):
        # checkpoint_every larger than the whole run: the kill lands
        # with no checkpoint ever taken; recovery restores-from-empty
        # and replays the *entire* journal.
        cols = make_cols(n=1500)
        plan = FaultPlan([kill_worker(0, at_batch=1)])
        serial, snap, results = run_pair(
            cols, batch=300, faults=plan, checkpoint_every=1000,
            journal_batches=1000,
        )
        assert snap.recovery.restarts == 1
        assert snap.recovery.checkpoints_taken == 0
        assert snap.as_dict() == serial.snapshot().as_dict()
        for fid, res in results.items():
            assert res == serial.result(fid)

    def test_dies_during_checkpoint_write(self):
        # The checkpoint write is corrupted (torn blob) and the worker
        # is killed before the next one lands: the parent must fall
        # back to the *previous* valid checkpoint + a longer journal,
        # and still reconverge bit-identically.
        cols = make_cols()
        plan = FaultPlan([
            corrupt_checkpoint(1, at=2),
            kill_worker(1, at_batch=11),
        ])
        serial, snap, results = run_pair(
            cols, batch=200, faults=plan, checkpoint_every=4,
            journal_batches=64,
        )
        assert ("corrupt_checkpoint", "worker=1", 2) in plan.fired
        assert snap.recovery.checkpoints_rejected >= 1
        assert snap.recovery.restarts == 1
        assert snap.recovery.records_lost == 0
        assert snap.as_dict() == serial.snapshot().as_dict()
        for fid, res in results.items():
            assert res == serial.result(fid)

    def test_scalar_ingest_supervised_recovery(self):
        factory = FACTORIES["congestion"]
        serial = Collector(factory(), num_shards=4, seed=1)
        plan = FaultPlan([kill_worker(0, at_batch=5)])
        with ParallelCollector(
            factory(), workers=2, num_shards=4, seed=1,
            checkpoint_every=3, faults=plan,
        ) as par:
            for i in range(40):
                serial.ingest(i % 7, i, 4, i % 256, now=float(i))
                par.ingest(i % 7, i, 4, i % 256, now=float(i))
            par.drain()
            assert plan.fired
            assert par.snapshot().as_dict() == serial.snapshot().as_dict()

    def test_undersized_journal_degrades_gracefully(self):
        # Checkpointing permanently failing + a tiny journal + a kill:
        # completes without an exception, marks exactly the starved
        # worker's shards degraded, and accounts the lost records.
        cols = make_cols()
        plan = FaultPlan([drop_checkpoint(0), kill_worker(0, at_batch=8)])
        serial, snap, results = run_pair(
            cols, faults=plan, checkpoint_every=2, journal_batches=2,
        )
        degraded = snap.degraded_shards
        assert degraded and all(s % 2 == 0 for s in degraded)
        assert snap.records_lost > 0
        assert snap.recovery.checkpoints_rejected > 0
        assert snap.recovery.journal_dropped_records >= snap.records_lost
        d = snap.as_dict()
        assert d["degraded_shards"] == degraded
        assert d["records_lost"] == snap.records_lost
        # Worker 1 was healthy: its flows still answer identically.
        healthy = [
            fid for fid in results
            if serial.router.shard_of(fid) % 2 == 1
        ]
        assert healthy
        for fid in healthy:
            assert results[fid] == serial.result(fid)

    def test_on_data_loss_raise(self):
        cols = make_cols()
        plan = FaultPlan([drop_checkpoint(0)])
        with pytest.raises(JournalOverflowError) as exc:
            run_pair(cols, faults=plan, checkpoint_every=2,
                     journal_batches=2, on_data_loss="raise")
        assert exc.value.worker == 0

    def test_max_restarts_bounds_the_retry_storm(self):
        cols = make_cols()
        plan = FaultPlan([
            kill_worker(0, at_batch=2), kill_worker(0, at_batch=4),
        ])
        par = ParallelCollector(
            FACTORIES["path"](), workers=2, num_shards=8, seed=1,
            checkpoint_every=4, faults=plan, max_restarts=1,
        )
        try:
            with pytest.raises(RecoveryError, match="max_restarts"):
                feed(par, cols, batch=200)
                par.drain()
        finally:
            # The second kill's victim is dead un-recovered, so close()
            # reports it too; that report must not mask the typed error
            # above (hence the explicit lifecycle, not a with-block).
            with pytest.raises(RuntimeError):
                par.close(timeout=2.0)

    def test_supervision_param_validation(self):
        factory = congestion_consumer_factory()
        with pytest.raises(ValueError, match="checkpoint_every"):
            ParallelCollector(factory, workers=2, num_shards=4,
                              journal_batches=8)
        with pytest.raises(ValueError, match="checkpoint_every"):
            ParallelCollector(factory, workers=2, num_shards=4,
                              faults=FaultPlan())
        with pytest.raises(ValueError, match="checkpoint_every"):
            ParallelCollector(factory, workers=2, num_shards=4,
                              wedge_timeout=1.0)
        with pytest.raises(ValueError):
            ParallelCollector(factory, workers=2, num_shards=4,
                              checkpoint_every=0)
        with pytest.raises(ValueError, match="on_data_loss"):
            ParallelCollector(factory, workers=2, num_shards=4,
                              checkpoint_every=2, on_data_loss="panic")

    def test_recovery_stats_ride_compare_false(self):
        # A recovered run and a fault-free run with bit-identical
        # collector state must compare equal as Snapshot objects:
        # the ledger is a sidecar, not part of identity.
        cols = make_cols(n=1200)
        plan = FaultPlan([kill_worker(1, at_batch=2)])
        _, faulted, _ = run_pair(cols, faults=plan)
        _, clean, _ = run_pair(cols, faults=None)
        assert faulted.recovery is not None
        assert faulted.recovery.restarts == 1
        assert clean.recovery.restarts == 0
        assert clean.recovery.checkpoints_taken > 0
        assert faulted == clean
        assert "recovery" not in faulted.as_dict()

    def test_recovery_stats_merged_fold(self):
        a = RecoveryStats(restarts=1, replayed_batches=3)
        b = RecoveryStats(restarts=2, records_lost=7)
        merged = RecoveryStats.merged([a, None, b])
        assert merged == RecoveryStats(
            restarts=3, replayed_batches=3, records_lost=7
        )
        assert RecoveryStats.merged([None, None]) is None

    def test_unsupervised_snapshot_carries_no_recovery(self):
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4,
        ) as par:
            par.ingest_batch([1, 2, 3], [1, 2, 3], [3, 3, 3], [5, 6, 7])
            par.drain()
            assert par.snapshot().recovery is None


# -- close() escalation -----------------------------------------------------

class TestCloseEscalation:
    def test_stopped_worker_is_sigkilled_and_reported(self):
        # SIGSTOP makes a worker immune to SIGTERM (the signal stays
        # pending while the process is stopped): only the SIGKILL rung
        # of the escalation can reap it.  close() must do so and say
        # so, not hang or leak a zombie.
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4,
        ).start()
        par.ingest_batch([1, 2, 3, 4], [1, 2, 3, 4], [3, 3, 3, 3],
                         [9, 9, 9, 9])
        par.drain()
        victim = par._procs[0]
        os.kill(victim.pid, signal.SIGSTOP)
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="SIGKILL"):
            par.close(timeout=1.0)
        assert time.monotonic() - start < 10.0
        assert not victim.is_alive()
        assert not par.started

    def test_healthy_close_needs_no_escalation(self):
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4,
        ).start()
        par.ingest_batch([1, 2], [1, 2], [3, 3], [5, 6])
        par.close()  # no exception: every worker stopped cooperatively

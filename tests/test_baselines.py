"""Tests for the PPM / AMS / classic-INT baselines."""

import pytest

from repro.baselines import (
    AMSTraceback,
    INTCollector,
    PPMTraceback,
    int_overhead_bytes,
    overhead_fraction,
    serialization_delay_ns,
)
from repro.core.values import HopView, MetadataType
from repro.net import us_carrier


class TestPPM:
    def test_marks_cover_path(self):
        ppm = PPMTraceback()
        hops = {ppm.mark_of(pid, 6)[0] for pid in range(500)}
        assert hops == set(range(1, 7))

    def test_fragments_cover_range(self):
        ppm = PPMTraceback(num_fragments=8)
        frags = {ppm.mark_of(pid, 4)[1] for pid in range(500)}
        assert frags == set(range(8))

    def test_packet_count_matches_coupon_theory(self):
        ppm = PPMTraceback()
        stats = ppm.trial_stats(6, trials=25)
        expected = ppm.expected_packets(6)
        assert 0.6 * expected < stats.mean < 1.6 * expected

    def test_grows_with_path_length(self):
        ppm = PPMTraceback()
        short = ppm.trial_stats(4, trials=10).mean
        long = ppm.trial_stats(16, trials=10).mean
        assert long > short

    def test_overhead_constant(self):
        assert PPMTraceback.OVERHEAD_BITS == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            PPMTraceback(num_fragments=0)


class TestAMS:
    @pytest.fixture(scope="class")
    def topo(self):
        return us_carrier()

    def test_identifies_path(self, topo):
        path = topo.switch_path(*topo.pair_at_distance(6))
        ams = AMSTraceback(topo.switch_universe(), m=5)
        n = ams.packets_to_identify(path)
        assert n > 6  # needs all m families per hop

    def test_m6_needs_more_packets_than_m5(self, topo):
        path = topo.switch_path(*topo.pair_at_distance(8))
        m5 = AMSTraceback(topo.switch_universe(), m=5).trial_stats(path, trials=8)
        m6 = AMSTraceback(topo.switch_universe(), m=6).trial_stats(path, trials=8)
        assert m6.mean > m5.mean

    def test_m6_fewer_false_positives(self, topo):
        m5 = AMSTraceback(topo.switch_universe(), m=5, hash_bits=4)
        m6 = AMSTraceback(topo.switch_universe(), m=6, hash_bits=4)
        assert m6.false_positive_probability() <= m5.false_positive_probability()

    def test_candidates_matching_finds_router(self, topo):
        ams = AMSTraceback(topo.switch_universe(), m=5)
        router = topo.switches[17]
        values = {
            f: ams.families[f].bits(ams.hash_bits, router) for f in range(5)
        }
        cands = ams.candidates_matching(values)
        assert router in cands

    def test_validation(self):
        with pytest.raises(ValueError):
            AMSTraceback([1, 2, 3], m=0)


class TestClassicINT:
    def test_paper_overhead_numbers(self):
        # §2: 5-hop topology, one value/hop -> 28 bytes.
        assert int_overhead_bytes(1, 5) == 28
        # HPCC's 3 values + header on 5 hops.
        assert int_overhead_bytes(3, 5) == 68
        # Five values -> 108 bytes, 7.2% of a 1500B packet.
        assert int_overhead_bytes(5, 5) == 108
        assert overhead_fraction(5, 5) == pytest.approx(0.072)

    def test_overhead_linear_in_hops(self):
        assert (
            int_overhead_bytes(2, 10) - int_overhead_bytes(2, 5)
            == 4 * 2 * 5
        )

    def test_serialization_delay(self):
        # §2 footnote 3: 48B at 10G ~ 38ns per interface.
        assert serialization_delay_ns(48, 10) == pytest.approx(38.4)
        assert serialization_delay_ns(48, 100) == pytest.approx(3.84)

    def test_collector_reports_everything(self):
        collector = INTCollector([MetadataType.SWITCH_ID, MetadataType.HOP_LATENCY])
        hops = [
            HopView(switch_id=3, hop_number=1, hop_latency=1e-5),
            HopView(switch_id=9, hop_number=2, hop_latency=2e-5),
        ]
        report = collector.collect(hops)
        assert report[0]["switch_id"] == 3.0
        assert report[1]["hop_latency"] == 2e-5
        assert collector.average_overhead() == int_overhead_bytes(2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            int_overhead_bytes(0, 5)
        with pytest.raises(ValueError):
            serialization_delay_ns(-1, 10)

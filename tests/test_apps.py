"""Tests for the use-case applications (path tracing, latency, congestion,
loop detection)."""

import random

import pytest

from repro.apps import (
    CongestionRuntime,
    LatencyCompressor,
    LatencyRuntime,
    LoopDetector,
    PathTracer,
    PathTracingRuntime,
    UtilizationCodec,
    simulate_latency_estimation,
)
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    PlanEntry,
    Query,
)
from repro.core.plan import ExecutionPlan
from repro.net import fat_tree, linear_topology, us_carrier
from repro.sketch import exact_quantile


def _drive_runtime(runtime, path, packets, flow_id=1, latency_fn=None, util_fn=None):
    """Push packets through a single-query framework."""
    query = runtime.query
    plan = ExecutionPlan([PlanEntry((query,), 1.0)], query.bit_budget)
    fw = PINTFramework(plan)
    fw.register(runtime)
    for pid in range(1, packets + 1):
        hops = [
            HopView(
                switch_id=s,
                hop_number=i + 1,
                hop_latency=latency_fn(i, pid) if latency_fn else 0.0,
                egress_tx_utilization=util_fn(i, pid) if util_fn else 0.0,
            )
            for i, s in enumerate(path)
        ]
        fw.process_packet(
            PacketContext(packet_id=pid, flow_id=flow_id, path_len=len(path)),
            hops,
        )
    return fw


class TestPathTracer:
    def test_fat_tree_short_path(self):
        topo = fat_tree(4)
        tracer = PathTracer(topo, digest_bits=8, d=5)
        path = topo.switch_path(topo.hosts[0], topo.hosts[-1])
        stats = tracer.packets_for_path(path, trials=10)
        assert stats.mean < 120  # k=5, b=8: a few dozen packets

    def test_more_bits_fewer_packets(self):
        topo = us_carrier()
        path = topo.switch_path(*topo.pair_at_distance(10, random.Random(0)))
        low = PathTracer(topo, digest_bits=1, d=10).packets_for_path(path, trials=8)
        high = PathTracer(topo, digest_bits=8, d=10).packets_for_path(path, trials=8)
        assert high.mean < low.mean

    def test_two_hashes_overhead(self):
        topo = fat_tree(4)
        tracer = PathTracer(topo, digest_bits=8, num_hashes=2, d=5)
        assert tracer.bit_overhead == 16

    def test_sweep_returns_all_lengths(self):
        topo = us_carrier()
        out = PathTracer(topo, digest_bits=8, d=10).packets_vs_path_length(
            [4, 8], trials=5
        )
        assert set(out) == {4, 8}
        assert out[8].mean > out[4].mean


class TestPathTracingRuntime:
    def _query(self, bits=8, freq=1.0):
        return Query(
            "path", MetadataType.SWITCH_ID,
            AggregationType.STATIC_PER_FLOW, bits, frequency=freq,
        )

    def test_decodes_real_path(self):
        topo = linear_topology(6)
        path = topo.switch_path(0, 5)
        rt = PathTracingRuntime(self._query(), topo.switch_universe(), d=6)
        _drive_runtime(rt, path, packets=400)
        assert rt.flow_path(1) == path

    def test_progress_monotone(self):
        topo = linear_topology(8)
        path = topo.switch_path(0, 7)
        rt = PathTracingRuntime(self._query(), topo.switch_universe(), d=8)
        plan = ExecutionPlan([PlanEntry((rt.query,), 1.0)], 8)
        fw = PINTFramework(plan)
        fw.register(rt)
        last = 0
        for pid in range(1, 300):
            hops = [HopView(switch_id=s, hop_number=i + 1) for i, s in enumerate(path)]
            fw.process_packet(PacketContext(pid, 1, len(path)), hops)
            done, total = rt.progress(1)
            assert done >= last
            last = done
        assert last == len(path)

    def test_two_hash_variant_decodes(self):
        topo = linear_topology(5)
        path = topo.switch_path(0, 4)
        rt = PathTracingRuntime(
            self._query(bits=16), topo.switch_universe(), d=5, num_hashes=2
        )
        _drive_runtime(rt, path, packets=200)
        assert rt.flow_path(1) == path

    def test_budget_split_validated(self):
        with pytest.raises(ValueError):
            PathTracingRuntime(self._query(bits=9), (1, 2, 3), d=5, num_hashes=2)

    def test_unknown_flow(self):
        rt = PathTracingRuntime(self._query(), (1, 2, 3), d=5)
        assert rt.flow_path(99) is None
        assert rt.progress(99) == (0, 0)


class TestLatency:
    def test_compressor_roundtrip_error(self):
        comp = LatencyCompressor(bits=8)
        for lat in (1e-6, 5e-5, 2e-3, 0.5):
            code = comp.encode(lat, 1, 1)
            assert comp.decode(code) == pytest.approx(lat, rel=3 * comp.epsilon + 0.01)

    def test_4bit_coarser_than_8bit(self):
        assert LatencyCompressor(4).epsilon > LatencyCompressor(8).epsilon

    def test_runtime_median_estimate(self):
        rng = random.Random(0)
        path = [10, 11, 12]
        lat_streams = {
            i: [rng.gauss(1e-4 * (i + 1), 1e-5) for _ in range(3000)]
            for i in range(len(path))
        }
        query = Query(
            "lat", MetadataType.HOP_LATENCY,
            AggregationType.DYNAMIC_PER_FLOW, 8,
        )
        rt = LatencyRuntime(query)
        _drive_runtime(
            rt, path, packets=3000,
            latency_fn=lambda i, pid: lat_streams[i][pid - 1],
        )
        for hop in (1, 2, 3):
            truth = exact_quantile(lat_streams[hop - 1], 0.5)
            est = rt.quantile(1, hop, 0.5)
            assert est == pytest.approx(truth, rel=0.15)

    def test_samples_split_roughly_evenly(self):
        path = [1, 2, 3, 4]
        query = Query(
            "lat", MetadataType.HOP_LATENCY,
            AggregationType.DYNAMIC_PER_FLOW, 8,
        )
        rt = LatencyRuntime(query)
        _drive_runtime(rt, path, packets=4000, latency_fn=lambda i, pid: 1e-5)
        counts = [rt.samples_at(1, h) for h in (1, 2, 3, 4)]
        assert sum(counts) == 4000
        for c in counts:
            assert 800 < c < 1200  # ~uniform 1/k sampling (§4.1)

    def test_simulate_harness_accuracy(self):
        rng = random.Random(1)
        k, n = 4, 4000
        streams = [
            [abs(rng.gauss(5e-5 * (h + 1), 5e-6)) for _ in range(n)]
            for h in range(k)
        ]
        out = simulate_latency_estimation(streams, bits=8, num_packets=n, phi=0.5)
        for hop, (est, truth) in out.items():
            assert est == pytest.approx(truth, rel=0.2)

    def test_sketch_mode_bounded_space(self):
        rng = random.Random(2)
        k, n = 2, 6000
        streams = [[rng.expovariate(1e4) for _ in range(n)] for _ in range(k)]
        out = simulate_latency_estimation(
            streams, bits=8, num_packets=n, phi=0.5, sketch_size=64
        )
        for hop, (est, truth) in out.items():
            assert est == pytest.approx(truth, rel=0.35)

    def test_harness_validates_input(self):
        with pytest.raises(ValueError):
            simulate_latency_estimation([[1.0]], bits=8, num_packets=5, phi=0.5)


class TestCongestion:
    def test_codec_error(self):
        codec = UtilizationCodec(bits=8, epsilon=0.025)
        for u in (0.01, 0.25, 0.5, 0.95, 1.5):
            # Randomized rounding: allow a couple of grid steps.
            dec = codec.decode(codec.encode(u, 1, 1))
            assert dec == pytest.approx(u, rel=0.12)

    def test_codec_unbiased(self):
        codec = UtilizationCodec(bits=8, epsilon=0.025)
        u = 0.6
        decs = [codec.decode(codec.encode(u, pid, 1)) for pid in range(4000)]
        assert sum(decs) / len(decs) == pytest.approx(u, rel=0.02)

    def test_runtime_reports_bottleneck(self):
        query = Query(
            "cc", MetadataType.EGRESS_TX_UTILIZATION,
            AggregationType.PER_PACKET, 8,
        )
        seen = []
        rt = CongestionRuntime(query, feedback=lambda f, u: seen.append(u))
        _drive_runtime(
            rt, [1, 2, 3], packets=200,
            util_fn=lambda i, pid: [0.2, 0.9, 0.4][i],
        )
        assert rt.feedback_count == 200
        mean = sum(seen) / len(seen)
        assert mean == pytest.approx(0.9, rel=0.1)

    def test_monotone_codes(self):
        codec = UtilizationCodec(bits=8)
        # max over codes must correspond to max over values on the
        # deterministic grid; randomized rounding may differ by 1 step.
        lo = codec._comp.encode(0.1 * codec.scale)
        hi = codec._comp.encode(0.9 * codec.scale)
        assert hi > lo


class TestLoopDetection:
    def test_loop_eventually_reported(self):
        ld = LoopDetector(digest_bits=15, threshold=1)
        loopy = [1, 2, 3] + [4, 5, 6] * 8
        detected = sum(
            ld.run_path(pid, loopy) is not None for pid in range(200)
        )
        assert detected > 150

    def test_no_false_positive_loop_free(self):
        ld = LoopDetector(digest_bits=15, threshold=1)
        rate = ld.false_positive_rate(list(range(1, 33)), 3000)
        # Paper: T=1, b=15 -> false rate < 5e-7; with 3000 packets we
        # should see none.
        assert rate == 0.0

    def test_threshold_zero_more_sensitive(self):
        # T=0 reports on the first match: faster detection, more FPs.
        strict = LoopDetector(digest_bits=4, threshold=3, seed=1)
        loose = LoopDetector(digest_bits=4, threshold=0, seed=1)
        path = list(range(1, 25))
        assert loose.false_positive_rate(path, 3000) >= strict.false_positive_rate(
            path, 3000
        )

    def test_bit_overhead(self):
        assert LoopDetector(digest_bits=15, threshold=1).bit_overhead == 16

    def test_fp_measure_rejects_loopy_path(self):
        ld = LoopDetector()
        with pytest.raises(ValueError):
            ld.false_positive_rate([1, 2, 1], 10)

"""Golden equivalence tests for the columnar batch-decode engine.

The contract under test (DESIGN.md §4): the scalar peeling decoders
define the semantics; ``observe_batch`` and the collector's
``consume_batch`` paths are execution-layer rewrites that must land in
the *identical* state -- decoded hops, candidate sets, counters,
reset behaviour -- for every mode (raw / hash / fragment), path
length, seed, batch split and column permutation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.congestion import UtilizationCodec
from repro.apps.latency import LatencyCompressor
from repro.approx import MultiplicativeCompressor
from repro.coding import (
    DistributedMessage,
    FragmentDecoder,
    PathEncoder,
    make_decoder,
    multilayer_scheme,
    pack_reps,
    unpack_reps,
    unpack_reps_array,
)
from repro.coding.encoder import CodecContext
from repro.collector import (
    Collector,
    latency_consumer_factory,
    path_consumer_factory,
)
from repro.hashing import (
    GlobalHash,
    reservoir_carrier,
    reservoir_carrier_zip,
    xor_acting_hops,
    xor_acting_matrix,
)
from repro.net import fat_tree


def build_codec(mode: str, k: int, bits: int, num_hashes: int, seed: int):
    """A (message, encoder) pair exercising one digest representation."""
    rng = np.random.default_rng(seed * 1000 + k)
    if mode == "hash":
        universe = list(range(100, 180))
        msg = DistributedMessage(
            rng.choice(universe, k).tolist(), universe=universe
        )
    elif mode == "raw":
        msg = DistributedMessage(
            [int(b) for b in rng.integers(0, 1 << bits, k)]
        )
    else:
        msg = DistributedMessage(
            [int(b) for b in rng.integers(0, 1 << 20, k)]
        )
    enc = PathEncoder(
        msg, multilayer_scheme(k), bits, mode, num_hashes, seed
    )
    return msg, enc


def assert_same_state(scalar, batch, mode: str) -> None:
    """The full decoder-state equivalence check."""
    assert scalar.is_complete == batch.is_complete
    assert scalar.missing == batch.missing
    assert scalar.packets_seen == batch.packets_seen
    if mode == "fragment":
        for a, b in zip(scalar._subdecoders, batch._subdecoders):
            assert a.decoded == b.decoded
            assert a.inconsistencies == b.inconsistencies
            assert a.packets_seen == b.packets_seen
    else:
        assert scalar.decoded == batch.decoded
        assert scalar.inconsistencies == batch.inconsistencies
    if mode == "hash":
        for hop in range(1, scalar.k + 1):
            assert scalar.candidates_left(hop) == batch.candidates_left(hop)
    if scalar.is_complete:
        assert scalar.path() == batch.path()


class TestDecoderBatchEquivalence:
    """observe_batch == observe()-in-order, bit for bit."""

    @pytest.mark.parametrize("mode", ["raw", "hash", "fragment"])
    @pytest.mark.parametrize("k", [1, 3, 7, 13])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_batch_matches_scalar(self, mode, k, seed):
        num_hashes = 2 if mode == "hash" and seed else 1
        bits = 8
        msg, enc = build_codec(mode, k, bits, num_hashes, seed)
        scalar = make_decoder(enc)
        batch = make_decoder(enc)
        n = 60 * k
        pids = np.arange(1, n + 1, dtype=np.int64)
        rows = [enc.encode(int(p)) for p in pids]
        for p, row in zip(pids, rows):
            scalar.observe(int(p), row)
        mat = np.asarray(rows, dtype=np.uint64)
        # Ragged chunking exercises completion landing mid-chunk.
        for lo in range(0, n, 37):
            batch.observe_batch(pids[lo:lo + 37], mat[lo:lo + 37])
        assert_same_state(scalar, batch, mode)
        assert scalar.is_complete, "stream long enough to decode"
        assert scalar.path() == list(msg.blocks)

    @pytest.mark.parametrize("mode", ["raw", "hash", "fragment"])
    def test_partial_stream_matches(self, mode):
        """Equivalence holds while the flow is still undecodable."""
        k = 11
        msg, enc = build_codec(mode, k, 8, 1, 3)
        scalar = make_decoder(enc)
        batch = make_decoder(enc)
        pids = np.arange(1, 9, dtype=np.int64)
        rows = [enc.encode(int(p)) for p in pids]
        for p, row in zip(pids, rows):
            scalar.observe(int(p), row)
        batch.observe_batch(pids, np.asarray(rows, dtype=np.uint64))
        assert not scalar.is_complete
        assert_same_state(scalar, batch, mode)

    def test_empty_batch_is_noop(self):
        _, enc = build_codec("hash", 4, 8, 1, 0)
        dec = make_decoder(enc)
        dec.observe_batch(
            np.empty(0, dtype=np.int64), np.empty((0, 1), dtype=np.uint64)
        )
        assert dec.packets_seen == 0

    def test_bad_reps_shape_rejected(self):
        _, enc = build_codec("hash", 4, 8, 2, 0)
        dec = make_decoder(enc)
        with pytest.raises(ValueError):
            dec.observe_batch(
                np.arange(3), np.zeros((3, 1), dtype=np.uint64)
            )

    @settings(max_examples=25, deadline=None)
    @given(
        mode=st.sampled_from(["raw", "hash", "fragment"]),
        n=st.integers(min_value=1, max_value=120),
        perm_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_shuffled_permutation_matches_scalar(self, mode, n, perm_seed):
        """Property: decode order does not change the decoded state.

        A shuffled column permutation batch-decodes to the same final
        state as the scalar in-order loop over the original stream --
        on honest digests every constraint keeps the true value, so
        the peeling closure is confluent.  Small ``n`` keeps many runs
        partially decodable, which is the interesting regime.
        """
        k = 9
        msg, enc = build_codec(mode, k, 8, 1, 1)
        scalar = make_decoder(enc)
        batch = make_decoder(enc)
        pids = np.arange(1, n + 1, dtype=np.int64)
        rows = [enc.encode(int(p)) for p in pids]
        for p, row in zip(pids, rows):
            scalar.observe(int(p), row)
        perm = np.random.default_rng(perm_seed).permutation(n)
        batch.observe_batch(
            pids[perm], np.asarray(rows, dtype=np.uint64)[perm]
        )
        assert_same_state(scalar, batch, mode)


class TestVectorisedReplays:
    """The array hash replays behind the engine, lane-for-lane."""

    def test_unpack_reps_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        for bits, reps in ((8, 2), (4, 3), (16, 1)):
            packed = rng.integers(0, 1 << (bits * reps), 200)
            mat = unpack_reps_array(packed, bits, reps)
            for row, digest in zip(mat, packed):
                assert tuple(int(v) for v in row) == unpack_reps(
                    int(digest), bits, reps
                )

    def test_xor_acting_matrix_matches_scalar(self):
        g = GlobalHash(3, "xor-test")
        pids = np.arange(1, 300, dtype=np.int64)
        for p in (0.1, 0.5, 1.0):
            mat = xor_acting_matrix(g, pids, 7, p)
            for i, pid in enumerate(pids):
                hops = [h + 1 for h in np.flatnonzero(mat[i]).tolist()]
                assert hops == xor_acting_hops(g, int(pid), 7, p)

    def test_reservoir_carrier_zip_matches_scalar(self):
        g = GlobalHash(9, "carrier-test")
        rng = np.random.default_rng(1)
        pids = np.arange(1, 500, dtype=np.int64)
        lens = rng.integers(1, 9, size=len(pids))
        zipped = reservoir_carrier_zip(g, pids, lens)
        for pid, length, carrier in zip(pids, lens, zipped):
            assert int(carrier) == reservoir_carrier(g, int(pid), int(length))

    def test_layer_of_array_matches_scalar(self):
        ctx = CodecContext(multilayer_scheme(16), 8, 1, 5)
        pids = np.arange(1, 2000, dtype=np.uint64)
        arr = ctx.layer_of_array(pids)
        assert all(
            int(a) == ctx.layer_of(int(p)) for p, a in zip(pids, arr)
        )


class TestDecodeArrays:
    """Table-gather decodes are bit-identical to the scalar decodes."""

    def test_multiplicative_decode_array(self):
        comp = MultiplicativeCompressor(0.025, bits=8, max_value=1e5)
        codes = np.arange(256, dtype=np.int64)
        got = comp.decode_array(codes)
        assert got.tolist() == [comp.decode(int(c)) for c in codes]

    def test_multiplicative_decode_array_rejects_negative(self):
        comp = MultiplicativeCompressor(0.025, bits=8, max_value=1e5)
        with pytest.raises(ValueError):
            comp.decode_array(np.asarray([3, -1]))

    def test_utilization_decode_array(self):
        codec = UtilizationCodec(8, seed=2)
        codes = np.arange(256, dtype=np.int64)
        assert codec.decode_array(codes).tolist() == [
            codec.decode(int(c)) for c in codes
        ]

    def test_latency_decode_array(self):
        comp = LatencyCompressor(10, seed=1)
        codes = np.arange(1024, dtype=np.int64)
        assert comp.decode_array(codes).tolist() == [
            comp.decode(int(c)) for c in codes
        ]


def path_stream(seed: int, rounds: int, num_hashes: int = 1):
    """A columnar multi-flow path-query stream over real topology paths."""
    topo = fat_tree(4)
    universe = topo.switch_universe()
    rng = np.random.default_rng(seed)
    flows = {}
    for fid in range(1, 10):
        src, dst = rng.choice(topo.hosts, 2, replace=False)
        flows[fid] = topo.switch_path(int(src), int(dst))
    bits = 8
    encs = {
        fid: PathEncoder(
            DistributedMessage.from_path(p, universe),
            multilayer_scheme(len(p)), bits, "hash", num_hashes, seed,
        )
        for fid, p in flows.items()
    }
    fids, pids, hops, digs = [], [], [], []
    pid = 0
    for _ in range(rounds):
        for fid, enc in encs.items():
            pid += 1
            fids.append(fid)
            pids.append(pid)
            hops.append(len(flows[fid]))
            digs.append(pack_reps(enc.encode(pid), bits))
    cols = tuple(np.asarray(c, dtype=np.int64) for c in (fids, pids, hops, digs))
    return cols, flows, universe, bits


class TestCollectorBatchDecode:
    """ingest vs ingest_batch through the full collector stack."""

    @pytest.mark.parametrize("num_hashes", [1, 2])
    def test_path_batch_matches_scalar(self, num_hashes):
        cols, flows, universe, bits = path_stream(4, 350, num_hashes)
        mk = lambda: Collector(
            path_consumer_factory(
                universe, digest_bits=bits, num_hashes=num_hashes, seed=4
            ),
            num_shards=4, seed=4,
        )
        scalar, batched = mk(), mk()
        fids, pids, hops, digs = cols
        for i in range(len(fids)):
            scalar.ingest(
                int(fids[i]), int(pids[i]), int(hops[i]), int(digs[i])
            )
        for lo in range(0, len(fids), 700):
            batched.ingest_batch(
                fids[lo:lo + 700], pids[lo:lo + 700],
                hops[lo:lo + 700], digs[lo:lo + 700],
            )
        for fid, path in flows.items():
            a, b = scalar.flow(fid), batched.flow(fid)
            assert a.is_complete and b.is_complete
            assert a.result() == b.result() == path
            assert a.decode_errors == b.decode_errors == 0
            assert a._decoder.packets_seen == b._decoder.packets_seen
            assert a._decoder.inconsistencies == b._decoder.inconsistencies

    def test_garbage_stream_resets_identically(self):
        """DecodingError resets land on the same records, scalar or batch."""
        universe = fat_tree(4).switch_universe()
        mk = lambda: path_consumer_factory(
            universe, digest_bits=8, seed=1, d=4
        )(1)
        scalar, batched = mk(), mk()
        n = 600
        pids = np.arange(1, n + 1, dtype=np.int64)
        hops = np.full(n, 4, dtype=np.int64)
        digs = (pids * 17) % 251
        for i in range(n):
            scalar.consume(int(pids[i]), 4, int(digs[i]))
        for lo in range(0, n, 97):
            batched.consume_batch(
                pids[lo:lo + 97], hops[lo:lo + 97], digs[lo:lo + 97]
            )
        assert scalar.decode_errors == batched.decode_errors >= 1
        assert (scalar._decoder is None) == (batched._decoder is None)
        if scalar._decoder is not None:
            assert scalar._decoder.decoded == batched._decoder.decoded
            assert (
                scalar._decoder.packets_seen
                == batched._decoder.packets_seen
            )

    def test_latency_batch_matches_scalar_raw_mode(self):
        """Raw-list latency stores are sample-identical, in order."""
        rng = np.random.default_rng(6)
        n = 5000
        fids = rng.integers(1, 25, n)
        pids = np.arange(1, n + 1)
        hops = rng.integers(2, 8, n)
        digs = rng.integers(0, 1024, n)
        mk = lambda: Collector(
            latency_consumer_factory(bits=10, seed=3), num_shards=2
        )
        scalar, batched = mk(), mk()
        for i in range(n):
            scalar.ingest(
                int(fids[i]), int(pids[i]), int(hops[i]), int(digs[i])
            )
        for lo in range(0, n, 1024):
            batched.ingest_batch(
                fids[lo:lo + 1024], pids[lo:lo + 1024],
                hops[lo:lo + 1024], digs[lo:lo + 1024],
            )
        for fid in np.unique(fids):
            a, b = scalar.flow(int(fid)), batched.flow(int(fid))
            assert a.result() == b.result()
            for hop, store in a._stores.items():
                other = b._stores[hop]
                assert store._raw == other._raw
                assert store.sketch_size == other.sketch_size

    def test_latency_sketch_mode_same_counts_and_bounds(self):
        """Sketch mode: identical attribution, bounded state, sane quantiles.

        The KLL coin order differs between scalar and batch compaction,
        so stored samples may differ -- counts and store sizing must
        not.
        """
        rng = np.random.default_rng(8)
        n = 4000
        fids = rng.integers(1, 10, n)
        pids = np.arange(1, n + 1)
        hops = np.full(n, 5)
        digs = rng.integers(0, 256, n)
        mk = lambda: Collector(
            latency_consumer_factory(bits=8, seed=2, sketch_size=64),
            num_shards=2,
        )
        scalar, batched = mk(), mk()
        for i in range(n):
            scalar.ingest(
                int(fids[i]), int(pids[i]), int(hops[i]), int(digs[i])
            )
        for lo in range(0, n, 512):
            batched.ingest_batch(
                fids[lo:lo + 512], pids[lo:lo + 512],
                hops[lo:lo + 512], digs[lo:lo + 512],
            )
        for fid in np.unique(fids):
            a, b = scalar.flow(int(fid)), batched.flow(int(fid))
            assert a.result() == b.result()  # per-hop sample counts
            for hop in a._stores:
                sa, sb = a._stores[hop], b._stores[hop]
                assert sa.sketch_size == sb.sketch_size
                assert sa._sketch.count == sb._sketch.count
                # Same samples in, same error guarantee out.
                qa, qb = sa.quantile(0.5), sb.quantile(0.5)
                assert qa > 0 and qb > 0

    def test_single_record_batches_match_scalar(self):
        """Batch size 1 exercises every scalar-fallback cutoff."""
        cols, flows, universe, bits = path_stream(2, 80)
        mk = lambda: Collector(
            path_consumer_factory(universe, digest_bits=bits, seed=4),
            num_shards=1,
        )
        scalar, batched = mk(), mk()
        fids, pids, hops, digs = cols
        for i in range(len(fids)):
            scalar.ingest(int(fids[i]), int(pids[i]), int(hops[i]), int(digs[i]))
            batched.ingest_batch(
                fids[i:i + 1], pids[i:i + 1], hops[i:i + 1], digs[i:i + 1]
            )
        for fid in flows:
            a, b = scalar.flow(fid), batched.flow(fid)
            assert a.result() == b.result()
            assert a.progress == b.progress


class TestStateAccounting:
    """Resident-bytes accounting over the array-backed decoder state."""

    def test_fragment_and_raw_decoders_report_bytes(self):
        for mode in ("raw", "fragment"):
            _, enc = build_codec(mode, 5, 8, 1, 0)
            dec = make_decoder(enc)
            assert dec.state_bytes() >= 0
            pids = np.arange(1, 400, dtype=np.int64)
            mat = np.asarray(
                [enc.encode(int(p)) for p in pids], dtype=np.uint64
            )
            dec.observe_batch(pids, mat)
            assert dec.is_complete
            assert dec.state_bytes() > 0
            if mode == "fragment":
                assert isinstance(dec, FragmentDecoder)

    def test_complete_decoder_counts_decoded_array(self):
        _, enc = build_codec("hash", 5, 8, 1, 0)
        dec = make_decoder(enc)
        pids = np.arange(1, 400, dtype=np.int64)
        mat = np.asarray([enc.encode(int(p)) for p in pids], dtype=np.uint64)
        dec.observe_batch(pids, mat)
        assert dec.is_complete
        before = dec.state_bytes()
        assert dec._decoded_arr is not None
        assert before >= dec._decoded_arr.nbytes

    def test_snapshot_bytes_never_negative_after_eviction(self):
        """Invariant: eviction shrinks the estimate, never below zero."""
        cols, flows, universe, bits = path_stream(1, 200)
        col = Collector(
            path_consumer_factory(universe, digest_bits=bits, seed=4),
            num_shards=2, max_flows_per_shard=2,
        )
        fids, pids, hops, digs = cols
        sizes = []
        for lo in range(0, len(fids), 256):
            col.ingest_batch(
                fids[lo:lo + 256], pids[lo:lo + 256],
                hops[lo:lo + 256], digs[lo:lo + 256],
            )
            snap = col.snapshot()
            assert snap.state_bytes >= 0
            assert all(s.state_bytes >= 0 for s in snap.shards)
            sizes.append(snap.state_bytes)
        assert col.snapshot().evictions > 0, "capacity 2/shard must evict"
        full = col.snapshot().state_bytes
        for fid in list(flows):
            col.evict(fid)
        drained = col.snapshot().state_bytes
        assert 0 <= drained <= full

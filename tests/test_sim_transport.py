"""Tests for the transports (Reno, HPCC) and experiment drivers."""

import pytest

from repro.net import fat_tree
from repro.sim import (
    Flow,
    INTTelemetry,
    Network,
    NoTelemetry,
    PINTTelemetry,
    Simulator,
    hadoop_cdf,
    run_hpcc_experiment,
    run_overhead_experiment,
    run_workload,
)
from repro.sim.workload import FlowSpec


def _net(telemetry=None, rate=1e8, buffer_bytes=200_000):
    topo = fat_tree(4)
    return topo, Network(
        topo, Simulator(), link_rate_bps=rate,
        buffer_bytes=buffer_bytes,
        telemetry=telemetry if telemetry is not None else NoTelemetry(),
    )


class TestRenoSingleFlow:
    def test_completes_and_fct_sane(self):
        topo, net = _net()
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 300_000, 0.0, transport="reno")
        net.sim.run(until=10.0)
        assert flow.fct is not None
        # Alone in the network: slowdown close to 1 (slow-start ramp).
        assert 1.0 <= flow.slowdown(1e8) < 2.0

    def test_small_flow_one_rtt_ish(self):
        topo, net = _net()
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[2], 1_000, 0.0, transport="reno")
        net.sim.run(until=1.0)
        assert flow.fct is not None
        assert flow.fct < 10 * flow.base_rtt

    def test_data_integrity_all_packets_delivered(self):
        topo, net = _net()
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 50_000, 0.0, transport="reno")
        net.sim.run(until=5.0)
        assert flow.receiver.expected == flow.num_packets

    def test_two_flows_share_bottleneck(self):
        topo, net = _net()
        h = topo.hosts
        # Same destination edge: they share the last-hop link.
        f1 = Flow(net, 1, h[0], h[4], 400_000, 0.0, transport="reno")
        f2 = Flow(net, 2, h[1], h[4], 400_000, 0.0, transport="reno")
        net.sim.run(until=10.0)
        assert f1.fct is not None and f2.fct is not None
        solo_ideal = f1.ideal_fct(1e8)
        # Sharing must slow both beyond the solo ideal.
        assert f1.fct > solo_ideal
        assert f2.fct > solo_ideal

    def test_loss_recovery_under_tiny_buffer(self):
        topo, net = _net(buffer_bytes=8_000)
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 200_000, 0.0, transport="reno")
        net.sim.run(until=20.0)
        assert flow.fct is not None  # survives drops
        drops = sum(l.drops for l in net.all_links())
        assert drops > 0
        assert flow.sender.retransmissions > 0


class TestHPCC:
    def test_int_fed_flow_completes(self):
        topo, net = _net(telemetry=INTTelemetry(3))
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 300_000, 0.0, transport="hpcc")
        net.sim.run(until=10.0)
        assert flow.fct is not None
        assert flow.sender.last_u > 0.3  # utilisation was observed

    def test_pint_fed_flow_completes(self):
        topo = fat_tree(4)
        probe = Network(topo, Simulator(), link_rate_bps=1e8)
        rtt = probe.base_rtt(topo.hosts[0], topo.hosts[-1])
        _, net = _net(telemetry=PINTTelemetry(base_rtt=rtt))
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 300_000, 0.0, transport="hpcc")
        net.sim.run(until=10.0)
        assert flow.fct is not None
        assert flow.sender.last_u > 0.3

    def test_pint_overhead_smaller_than_int(self):
        topo = fat_tree(4)
        assert PINTTelemetry(1e-3).source_overhead() < (
            INTTelemetry(3).source_overhead() + 12 * 5
        )

    def test_window_reacts_to_congestion(self):
        # Two HPCC flows into one destination: windows must drop below
        # the initial BDP once utilisation exceeds eta.
        topo, net = _net(telemetry=INTTelemetry(3))
        h = topo.hosts
        f1 = Flow(net, 1, h[0], h[4], 600_000, 0.0, transport="hpcc")
        f2 = Flow(net, 2, h[1], h[4], 600_000, 0.0, transport="hpcc")
        net.sim.run(until=10.0)
        assert f1.fct is not None and f2.fct is not None
        assert f1.sender.window_bytes < f1.sender.bdp_bytes

    def test_hpcc_keeps_queues_lower_than_reno(self):
        def max_queue(transport, telemetry):
            topo, net = _net(telemetry=telemetry)
            h = topo.hosts
            flows = [
                Flow(net, i + 1, h[i], h[4], 400_000, 0.0, transport=transport)
                for i in range(3)
            ]
            peak = 0
            orig = net.sim.run
            # sample queue occupancy via drops/buffer as a cheap proxy:
            net.sim.run(until=10.0)
            return sum(l.drops for l in net.all_links())

        reno_drops = max_queue("reno", NoTelemetry())
        hpcc_drops = max_queue("hpcc", INTTelemetry(3))
        assert hpcc_drops <= reno_drops


class TestExperimentDrivers:
    def test_overhead_experiment_runs(self):
        res = run_overhead_experiment(
            overhead_bytes=48, load=0.3, cdf=hadoop_cdf(),
            duration=0.1, max_flows=40, seed=3,
        )
        assert res.count > 10
        assert res.mean_fct() > 0

    def test_overhead_hurts_fct(self):
        base = run_overhead_experiment(
            0, load=0.5, cdf=hadoop_cdf(), duration=0.15, max_flows=80, seed=5
        )
        heavy = run_overhead_experiment(
            108, load=0.5, cdf=hadoop_cdf(), duration=0.15, max_flows=80, seed=5
        )
        # Same seed => same arrivals; extra bytes cannot speed things up.
        assert heavy.mean_fct() >= base.mean_fct() * 0.98

    def test_hpcc_experiment_both_modes(self):
        for mode in ("int", "pint"):
            res = run_hpcc_experiment(
                mode, load=0.3, cdf=hadoop_cdf(),
                duration=0.1, max_flows=40, seed=7,
            )
            assert res.count > 10
            assert res.mean_slowdown() >= 1.0

    def test_run_workload_direct(self):
        topo, net = _net()
        h = topo.hosts
        specs = [
            FlowSpec(h[0], h[5], 20_000, 0.0),
            FlowSpec(h[1], h[6], 20_000, 0.01),
        ]
        res = run_workload(specs, net, transport="reno", run_until=5.0)
        assert res.count == 2
        assert all(f.slowdown >= 1.0 for f in res.flows)

    def test_bad_telemetry_mode(self):
        from repro.sim import build_telemetry

        with pytest.raises(ValueError):
            build_telemetry("bogus")

"""Tests for the query language, engine, plans, and framework."""

import numpy as np
import pytest

from repro.core import (
    AggregationType,
    ExecutionPlan,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    PlanEntry,
    Query,
    QueryEngine,
    QueryRuntime,
)
from repro.exceptions import BudgetError, ConfigurationError


def q(name, bits=8, freq=1.0, agg=AggregationType.STATIC_PER_FLOW):
    return Query(name, MetadataType.SWITCH_ID, agg, bits, frequency=freq)


class TestQuery:
    def test_valid(self):
        query = q("path")
        assert query.bit_budget == 8

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            q("x", bits=0)

    def test_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            q("x", freq=0.0)
        with pytest.raises(ConfigurationError):
            q("x", freq=1.5)

    def test_per_packet_no_space(self):
        with pytest.raises(ConfigurationError):
            Query(
                "cc", MetadataType.EGRESS_TX_UTILIZATION,
                AggregationType.PER_PACKET, 8, space_budget=10,
            )

    def test_metadata_bits(self):
        assert MetadataType.HOP_LATENCY.bits == 32


class TestHopView:
    def test_get_dispatch(self):
        hop = HopView(switch_id=7, hop_number=2, hop_latency=1e-5,
                      queue_occupancy=1234)
        assert hop.get(MetadataType.SWITCH_ID) == 7.0
        assert hop.get(MetadataType.HOP_LATENCY) == 1e-5
        assert hop.get(MetadataType.QUEUE_OCCUPANCY) == 1234.0


class TestExecutionPlan:
    def test_budget_enforced(self):
        with pytest.raises(BudgetError):
            ExecutionPlan([PlanEntry((q("a", 10), q("b", 10)), 1.0)], 16)

    def test_probabilities_enforced(self):
        with pytest.raises(BudgetError):
            ExecutionPlan(
                [PlanEntry((q("a"),), 0.7), PlanEntry((q("b"),), 0.7)], 16
            )

    def test_select_deterministic(self):
        plan = ExecutionPlan(
            [PlanEntry((q("a"),), 0.5), PlanEntry((q("b"),), 0.5)], 8
        )
        assert plan.select(42) == plan.select(42)

    def test_select_distribution(self):
        plan = ExecutionPlan(
            [PlanEntry((q("a"),), 0.25), PlanEntry((q("b"),), 0.75)], 8
        )
        picks = [plan.select(pid)[0].name for pid in range(8000)]
        share_a = picks.count("a") / len(picks)
        assert 0.22 < share_a < 0.28

    def test_partial_probability_gives_empty(self):
        plan = ExecutionPlan([PlanEntry((q("a"),), 0.5)], 8)
        empties = sum(1 for pid in range(4000) if plan.select(pid) == ())
        assert 1700 < empties < 2300

    def test_digest_offsets(self):
        qa, qb = q("a", 8), q("b", 4)
        plan = ExecutionPlan([PlanEntry((qa, qb), 1.0)], 16)
        assert plan.digest_offset((qa, qb), qa) == 0
        assert plan.digest_offset((qa, qb), qb) == 8

    def test_query_frequency(self):
        qa = q("a", 8, freq=0.6)
        plan = ExecutionPlan(
            [PlanEntry((qa,), 0.4), PlanEntry((qa, q("b", 8)), 0.3)], 16
        )
        assert plan.query_frequency(qa) == pytest.approx(0.7)

    def test_select_array_matches_scalar(self):
        plan = ExecutionPlan(
            [PlanEntry((q("a"),), 0.3), PlanEntry((q("b"),), 0.45)], 8
        )
        pids = np.arange(4000, dtype=np.int64)
        idx = plan.select_array(pids)
        assert set(idx.tolist()) == {-1, 0, 1}
        for pid in range(0, 4000, 7):
            scalar = plan.select(pid)
            if idx[pid] < 0:
                assert scalar == ()
            else:
                assert scalar == plan.entries[int(idx[pid])].queries


class TestQueryEngine:
    def test_paper_combined_plan(self):
        # §6.4: path on all packets, latency on 15/16, HPCC on 1/16,
        # global budget 16 bits.
        path_q = q("path", 8, 1.0)
        lat_q = q("lat", 8, 15 / 16, AggregationType.DYNAMIC_PER_FLOW)
        cc_q = Query(
            "cc", MetadataType.EGRESS_TX_UTILIZATION,
            AggregationType.PER_PACKET, 8, frequency=1 / 16,
        )
        plan = QueryEngine(16).compile([path_q, lat_q, cc_q])
        plan.validate_frequencies()
        assert plan.query_frequency(path_q) == pytest.approx(1.0)
        assert plan.query_frequency(lat_q) == pytest.approx(15 / 16)
        assert plan.query_frequency(cc_q) == pytest.approx(1 / 16)
        for entry in plan.entries:
            assert entry.bits() <= 16

    def test_single_query(self):
        plan = QueryEngine(8).compile([q("only", 8, 1.0)])
        assert len(plan.entries) == 1

    def test_too_wide_query(self):
        with pytest.raises(BudgetError):
            QueryEngine(8).compile([q("wide", 16)])

    def test_infeasible_demand(self):
        # Three full-frequency 8-bit queries cannot share 16 bits.
        with pytest.raises(BudgetError):
            QueryEngine(16).compile(
                [q("a", 8, 1.0), q("b", 8, 1.0), q("c", 8, 1.0)]
            )

    def test_feasible_three_way_split(self):
        plan = QueryEngine(16).compile(
            [q("a", 8, 0.5), q("b", 8, 0.5), q("c", 8, 1.0)]
        )
        plan.validate_frequencies()

    def test_duplicate_names(self):
        with pytest.raises(BudgetError):
            QueryEngine(16).compile([q("a"), q("a")])

    def test_empty(self):
        with pytest.raises(BudgetError):
            QueryEngine(16).compile([])

    def test_manual_plan(self):
        qa, qb = q("a", 8), q("b", 8)
        plan = QueryEngine(16).manual_plan([((qa, qb), 0.5), ((qa,), 0.5)])
        assert plan.query_frequency(qa) == pytest.approx(1.0)


class _EchoRuntime(QueryRuntime):
    """Writes the hop number, remembers what the sink saw."""

    def __init__(self, query):
        super().__init__(query)
        self.sunk = []

    def on_hop(self, ctx, hop, digest):
        return hop.hop_number

    def on_sink(self, ctx, digest):
        self.sunk.append((ctx.packet_id, digest))


class TestFramework:
    def _setup(self):
        qa, qb = q("a", 8), q("b", 4)
        plan = ExecutionPlan([PlanEntry((qa, qb), 1.0)], 16)
        fw = PINTFramework(plan)
        ra, rb = _EchoRuntime(qa), _EchoRuntime(qb)
        fw.register(ra)
        fw.register(rb)
        return fw, ra, rb

    def test_slices_are_independent(self):
        fw, ra, rb = self._setup()
        hops = [HopView(switch_id=s, hop_number=i + 1) for i, s in enumerate([5, 6, 7])]
        ctx = PacketContext(packet_id=1, flow_id=1, path_len=3)
        digest = fw.process_packet(ctx, hops)
        # Both runtimes last wrote hop_number=3 into their own slice.
        assert ra.sunk == [(1, 3)]
        assert rb.sunk == [(1, 3)]
        assert digest == (3 << 8) | 3

    def test_width_masked(self):
        qa = q("a", 2)
        plan = ExecutionPlan([PlanEntry((qa,), 1.0)], 2)
        fw = PINTFramework(plan)
        r = _EchoRuntime(qa)
        fw.register(r)
        hops = [HopView(switch_id=1, hop_number=7)]
        fw.process_packet(PacketContext(1, 1, 1), hops)
        assert r.sunk == [(1, 7 & 0b11)]

    def test_missing_runtime(self):
        qa = q("a", 8)
        plan = ExecutionPlan([PlanEntry((qa,), 1.0)], 8)
        fw = PINTFramework(plan)
        with pytest.raises(ConfigurationError):
            fw.process_packet(PacketContext(1, 1, 1), [HopView(1, 1)])

    def test_duplicate_runtime(self):
        fw, ra, _ = self._setup()
        with pytest.raises(ConfigurationError):
            fw.register(ra)

    def test_overhead_constant(self):
        fw, _, _ = self._setup()
        assert fw.overhead_bytes_per_packet() == 2.0

"""Smoke tests: every shipped example must run end-to-end.

These keep deliverable (b) honest -- if an API change breaks an
example, the suite fails.  Heavy examples are trimmed via monkeypatched
parameters where needed; each still exercises its full code path.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "decoded path" in out
        assert "bottleneck util" in out

    def test_loop_detection(self, capsys):
        _load("loop_detection").main()
        out = capsys.readouterr().out
        assert "false positives" in out

    def test_pipeline_layouts(self, capsys):
        _load("pipeline_layouts").main()
        out = capsys.readouterr().out
        assert "4 stages" in out
        assert "8 stages" in out

    def test_latency_monitoring(self, capsys):
        _load("latency_monitoring").main()
        out = capsys.readouterr().out
        assert "regression detected" in out

    @pytest.mark.slow
    def test_congestion_control(self, capsys):
        _load("congestion_control").main()
        out = capsys.readouterr().out
        assert "HPCC(PINT)" in out

    @pytest.mark.slow
    def test_path_tracing_isp(self, capsys):
        _load("path_tracing_isp").main()
        out = capsys.readouterr().out
        assert "PINT 2x(b=8)" in out

    def test_collector_service(self, capsys):
        _load("collector_service").main()
        out = capsys.readouterr().out
        assert "records streamed to sink" in out
        assert "paths decoded exactly      : 16/16" in out

    def test_parallel_collector(self, capsys):
        _load("parallel_collector").main()
        out = capsys.readouterr().out
        assert "decode outcomes identical  : True" in out
        assert "merged snapshot identical  : True" in out

    def test_replay_scenarios(self, capsys):
        _load("replay_scenarios").main()
        out = capsys.readouterr().out
        assert "replaying every scenario" in out
        assert "isp-long-paths" in out
        assert "trace round-trip" in out
        assert "exact" in out
        assert "identical to original: True" in out

    def test_lossy_replay(self, capsys):
        _load("lossy_replay").main()
        out = capsys.readouterr().out
        assert "perfect network" in out
        assert "graceful degradation" in out
        assert "decoded fully" in out
        assert "partial path" in out

    def test_live_service(self, capsys):
        _load("live_service").main()
        out = capsys.readouterr().out
        assert "json query port" in out
        assert "exactly once" in out
        assert "complete=True" in out
        assert "despite the lossy wire" in out

    def test_obs_watch(self, capsys):
        _load("obs_watch").main()
        out = capsys.readouterr().out
        assert "instrumented replay" in out
        assert "stages:" in out
        assert "pint_replay_stage_seconds_sum" in out
        assert "drew 3 frames" in out

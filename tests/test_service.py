"""Live collector service: wire codec, server, senders, query port, CLI.

Covers the PR-6 contract: the binary frame layout is pinned byte for
byte (golden vectors) and version-checked before anything else is
trusted; malformed input of every shape is rejected with typed errors
and counted per reason, never crashed on; the admission queue drops
fire-and-forget overload but parks reliable frames unacked; the
seq/ACK/RTO sender delivers exactly once under heavy simulated loss;
fragment reassembly keeps wire-fed collectors bit-identical to
in-process ingest (snapshots and per-flow answers alike, including
through ``ReplayDriver(transport=...)``); and both collector
implementations refuse post-close ingest with the same typed error.
"""

import json
import signal
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collector import Collector, ParallelCollector, path_consumer_factory
from repro.exceptions import CollectorClosedError, ReproError
from repro.replay import ReplayDriver, build_trace
from repro.service import (
    AckFrame,
    BadFrameError,
    BadMagicError,
    BadVersionError,
    CollectorServer,
    DataFrame,
    DeliveryError,
    QueryClient,
    QueryError,
    QueryHandler,
    QueryServer,
    ReliableUDPSender,
    ServiceError,
    StreamDecoder,
    TCPSender,
    TruncatedFrameError,
    UDPSender,
    WireError,
    decode_frame,
    decode_frames,
    encode_ack,
    encode_frame,
    encode_frames,
    make_sender,
)
from repro.service import wire
from repro.service.query import jsonable
from repro.service.__main__ import build_parser, main

UNIVERSE = list(range(1, 33))
REPO = Path(__file__).resolve().parent.parent


def make_collector(**kw):
    kw.setdefault("num_shards", 4)
    kw.setdefault("seed", 0)
    return Collector(
        path_consumer_factory(UNIVERSE, digest_bits=8, num_hashes=1, seed=0),
        **kw,
    )


def batch(n, base=0):
    """A deterministic n-record columnar batch."""
    fids = np.arange(base, base + n, dtype=np.int64) % 17
    pids = np.arange(base, base + n, dtype=np.int64)
    hops = np.full(n, 4, dtype=np.int64)
    digs = (pids * 31 + 7) % 251
    return fids, pids, hops, digs


FAST_RTO = dict(min_rto=0.005, initial_rto=0.02, max_rto=0.1)


# -- wire: golden layout ----------------------------------------------------

class TestWireGolden:
    def test_data_frame_bytes_pinned(self):
        # One record (1, 2, 3, 4), now=1.5, seq=7: the exact wire
        # image, pinned so any layout change is a deliberate VERSION
        # bump, not an accident.
        got = encode_frame([1], [2], [3], [4], 1.5, 7)
        assert got.hex() == (
            "50490101070000000100000000000000000000f83f"
            "0100000000000000020000000000000003000000000000000400000000000000"
        )

    def test_frame_starts_with_magic_and_version(self):
        frame = encode_frame([1], [2], [3], [4], 0.0, 0)
        assert frame[:2] == b"PI"
        assert frame[2] == wire.VERSION

    def test_empty_no_time_frame_bytes_pinned(self):
        got = encode_frame([], [], [], [], None, 0)
        assert got.hex() == "504901010000000000000000040000000000000000"

    def test_ack_bytes_pinned(self):
        assert encode_ack(9).hex() == "5049010209000000"

    def test_header_sizes(self):
        # 21-byte data header + 32 bytes per record; 8-byte ACK.
        assert len(encode_frame([1], [2], [3], [4], 0.0, 0)) == 21 + 32
        assert len(encode_ack(0)) == 8


# -- wire: round trips ------------------------------------------------------

class TestWireRoundTrip:
    def test_single_frame_round_trip(self):
        fids, pids, hops, digs = batch(10)
        frame = decode_frame(encode_frame(fids, pids, hops, digs, 2.5, 3))
        assert isinstance(frame, DataFrame)
        assert frame.seq == 3 and frame.now == 2.5 and frame.count == 10
        assert not frame.reliable and not frame.more
        np.testing.assert_array_equal(frame.flow_ids, fids)
        np.testing.assert_array_equal(frame.pids, pids)
        np.testing.assert_array_equal(frame.hop_counts, hops)
        np.testing.assert_array_equal(frame.digests, digs)

    def test_no_time_round_trip(self):
        frame = decode_frame(encode_frame([1], [2], [3], [4], None, 0))
        assert frame.now is None

    def test_zero_record_frame_round_trip(self):
        frame = decode_frame(encode_frame([], [], [], [], 1.0, 5))
        assert frame.count == 0 and frame.seq == 5

    def test_negative_int64_round_trip(self):
        vals = np.array([-1, -(2**62), 2**62], dtype=np.int64)
        frame = decode_frame(encode_frame(vals, vals, vals, vals, 0.0, 0))
        np.testing.assert_array_equal(frame.digests, vals)

    def test_ack_round_trip(self):
        frame = decode_frame(encode_ack(41))
        assert isinstance(frame, AckFrame) and frame.seq == 41

    def test_fragmentation_flags_and_seqs(self):
        fids, pids, hops, digs = batch(10)
        frames = encode_frames(fids, pids, hops, digs, 1.0,
                               start_seq=5, max_records=4)
        decoded = [decode_frame(f) for f in frames]
        assert [f.seq for f in decoded] == [5, 6, 7]
        assert [f.more for f in decoded] == [True, True, False]
        assert [f.count for f in decoded] == [4, 4, 2]
        np.testing.assert_array_equal(
            np.concatenate([f.pids for f in decoded]), pids
        )

    def test_empty_batch_encodes_no_frames(self):
        assert encode_frames([], [], [], [], 1.0) == []

    def test_decode_frames_buffer(self):
        fids, pids, hops, digs = batch(6)
        buf = b"".join(encode_frames(fids, pids, hops, digs, 1.0,
                                     max_records=2)) + encode_ack(3)
        frames = decode_frames(buf)
        assert len(frames) == 4
        assert wire.frames_payload_records(frames) == 6
        assert isinstance(frames[-1], AckFrame)

    def test_oversized_single_frame_rejected(self):
        with pytest.raises(ValueError):
            n = wire.MAX_FRAME_RECORDS + 1
            encode_frame(np.zeros(n, dtype=np.int64),
                         np.zeros(n, dtype=np.int64),
                         np.zeros(n, dtype=np.int64),
                         np.zeros(n, dtype=np.int64), 0.0, 0)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=300),
        max_records=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
        reliable=st.booleans(),
    )
    def test_round_trip_property(self, n, max_records, seed, reliable):
        rng = np.random.default_rng(seed)
        cols = rng.integers(-(2**63), 2**63, size=(4, n), dtype=np.int64)
        frames = encode_frames(*cols, 3.25, max_records=max_records,
                               reliable=reliable)
        decoded = decode_frames(b"".join(frames))
        assert len(decoded) == (n + max_records - 1) // max_records
        if n:
            back = [
                np.concatenate([f.flow_ids for f in decoded]),
                np.concatenate([f.pids for f in decoded]),
                np.concatenate([f.hop_counts for f in decoded]),
                np.concatenate([f.digests for f in decoded]),
            ]
            for sent, got in zip(cols, back):
                np.testing.assert_array_equal(sent, got)
            assert all(f.reliable == reliable for f in decoded)
            assert [f.more for f in decoded][-1] is False


# -- wire: malformed input --------------------------------------------------

class TestWireMalformed:
    def test_truncated_prefix(self):
        with pytest.raises(TruncatedFrameError):
            decode_frame(b"PI")

    def test_truncated_columns(self):
        frame = encode_frame([1], [2], [3], [4], 0.0, 0)
        with pytest.raises(TruncatedFrameError):
            decode_frame(frame[:-5])

    def test_bad_magic(self):
        with pytest.raises(BadMagicError):
            decode_frame(b"XX" + encode_ack(0)[2:])

    def test_bad_version_carries_version(self):
        frame = bytearray(encode_ack(0))
        frame[2] = 99
        with pytest.raises(BadVersionError) as err:
            decode_frame(bytes(frame))
        assert err.value.version == 99

    def test_unknown_frame_type(self):
        bad = struct.pack("<HBBI", wire.MAGIC, wire.VERSION, 77, 0)
        with pytest.raises(BadFrameError):
            decode_frame(bad)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(BadFrameError):
            decode_frame(encode_ack(0) + b"\x00")

    def test_absurd_count_rejected_without_allocation(self):
        bad = struct.pack("<HBBIIBd", wire.MAGIC, wire.VERSION, wire.FT_DATA,
                          0, 2**31, 0, 0.0)
        with pytest.raises(BadFrameError):
            decode_frame(bad)

    def test_unknown_flag_bits_rejected(self):
        bad = struct.pack("<HBBIIBd", wire.MAGIC, wire.VERSION, wire.FT_DATA,
                          0, 0, 0x80, 0.0)
        with pytest.raises(BadFrameError):
            decode_frame(bad)

    def test_errors_are_typed(self):
        for exc in (TruncatedFrameError, BadMagicError, BadVersionError,
                    BadFrameError):
            assert issubclass(exc, WireError)
        assert issubclass(WireError, ReproError)

    def test_stream_decoder_reassembles_byte_by_byte(self):
        fids, pids, hops, digs = batch(5)
        data = b"".join(encode_frames(fids, pids, hops, digs, 1.0,
                                      max_records=2)) + encode_ack(7)
        dec = StreamDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(dec.feed(data[i:i + 1]))
        assert wire.frames_payload_records(frames) == 5
        assert isinstance(frames[-1], AckFrame)
        assert dec.pending_bytes == 0

    def test_stream_decoder_poisons_permanently(self):
        dec = StreamDecoder()
        with pytest.raises(BadMagicError):
            dec.feed(b"garbage bytes here")
        # Even good bytes are refused after framing is lost.
        with pytest.raises(BadMagicError):
            dec.feed(encode_ack(0))


# -- server: admission policy (no sockets) ----------------------------------

def data_frame(seq, n=1, reliable=False, more=False):
    fids, pids, hops, digs = batch(n, base=seq * 100)
    return decode_frame(encode_frame(fids, pids, hops, digs, 1.0, seq,
                                     reliable=reliable, more=more))


class TestAdmissionPolicy:
    """Unit tests on the admission path, listener threads not running."""

    def make_server(self, **kw):
        kw.setdefault("queue_frames", 2)
        return CollectorServer(make_collector(), **kw)

    def test_fire_and_forget_drops_on_full_queue(self):
        srv = self.make_server(queue_frames=2)
        addr = ("127.0.0.1", 9)
        for seq in range(3):
            srv._admit(data_frame(seq), ("udp", addr), addr)
        stats = srv.service_stats()
        assert stats.frames_received == 3
        assert stats.dropped_queue_full == 1
        assert srv._queue.qsize() == 2

    def test_garbage_datagram_counted_as_bad_frame(self):
        srv = self.make_server()
        srv._on_datagram(b"not a frame at all", ("127.0.0.1", 9))
        assert srv.service_stats().dropped_bad_frame == 1

    def test_future_version_counted_separately(self):
        srv = self.make_server()
        frame = bytearray(encode_frame([1], [2], [3], [4], 0.0, 0))
        frame[2] = wire.VERSION + 1
        srv._on_datagram(bytes(frame), ("127.0.0.1", 9))
        stats = srv.service_stats()
        assert stats.dropped_bad_version == 1
        assert stats.dropped_bad_frame == 0

    def test_reliable_duplicate_not_requeued(self):
        srv = self.make_server(queue_frames=8)
        addr = ("127.0.0.1", 9)
        srv._admit(data_frame(0, reliable=True), ("udp", addr), addr)
        srv._admit(data_frame(0, reliable=True), ("udp", addr), addr)
        stats = srv.service_stats()
        assert stats.duplicate_frames == 1
        assert srv._queue.qsize() == 1

    def test_reliable_out_of_order_delivered_in_seq_order(self):
        srv = self.make_server(queue_frames=8)
        addr = ("127.0.0.1", 9)
        for seq in (2, 0, 1):
            srv._admit(data_frame(seq, reliable=True), ("udp", addr), addr)
        seqs = [srv._queue.get_nowait()[1].seq for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_reliable_window_overflow_refused(self):
        srv = self.make_server(queue_frames=8, reorder_limit=4)
        addr = ("127.0.0.1", 9)
        srv._admit(data_frame(100, reliable=True), ("udp", addr), addr)
        assert srv.service_stats().dropped_window == 1
        assert srv._queue.qsize() == 0

    def test_reliable_queue_full_parks_unacked(self):
        srv = self.make_server(queue_frames=1)
        addr = ("127.0.0.1", 9)
        srv._admit(data_frame(0, reliable=True), ("udp", addr), addr)
        srv._admit(data_frame(1, reliable=True), ("udp", addr), addr)
        stats = srv.service_stats()
        # Frame 1 is parked in the reorder buffer, not lost: the
        # sender's retransmit will re-offer it.
        assert stats.dropped_queue_full == 1
        assert 1 in srv._peers[("udp", addr)].buffer

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CollectorServer(make_collector(), udp_port=None, tcp_port=None)
        with pytest.raises(ValueError):
            CollectorServer(make_collector(), queue_frames=0)


# -- server + senders over loopback ----------------------------------------

class TestLoopbackService:
    def test_udp_ingest_matches_in_process(self):
        direct = make_collector()
        served = make_collector()
        with CollectorServer(served, tcp_port=None) as srv:
            tx = ReliableUDPSender("127.0.0.1", srv.udp_port, max_records=64)
            for i in range(4):
                cols = batch(150, base=i * 1000)
                direct.ingest_batch(*cols, now=float(i))
                tx.send_batch(*cols, now=float(i))
            tx.close()
            srv.wait_for_records(600, timeout=10)
            srv.drain()
            assert served.snapshot().as_dict() == direct.snapshot().as_dict()
            for fid in range(17):
                d, s = direct.flow(fid), served.flow(fid)
                assert (d is None) == (s is None)
                if d is not None:
                    assert d.result() == s.result()

    def test_tcp_ingest_matches_in_process(self):
        direct = make_collector()
        served = make_collector()
        with CollectorServer(served, udp_port=None) as srv:
            tx = TCPSender("127.0.0.1", srv.tcp_port)
            for i in range(3):
                cols = batch(200, base=i * 1000)
                direct.ingest_batch(*cols, now=float(i))
                tx.send_batch(*cols, now=float(i))
            tx.close()
            srv.wait_for_records(600, timeout=10)
            srv.drain()
            assert served.snapshot().as_dict() == direct.snapshot().as_dict()

    def test_reliable_delivers_all_under_10pct_loss(self):
        rng = np.random.default_rng(7)
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            tx = ReliableUDPSender(
                "127.0.0.1", srv.udp_port, max_records=16,
                drop_fn=lambda seq, attempt: bool(rng.random() < 0.10),
                **FAST_RTO,
            )
            sent = 0
            for i in range(4):
                sent += tx.send_batch(*batch(200, base=i * 1000),
                                      now=float(i))
            tx.flush()
            srv.wait_for_records(sent, timeout=30)
            stats = srv.service_stats()
            # 100% delivered, exactly once, despite per-transmission loss.
            assert stats.records_ingested == sent == 800
            assert stats.batches_ingested == 4
            assert tx.retransmits > 0

    def test_reliable_heavy_loss_exactly_once(self):
        rng = np.random.default_rng(3)
        direct = make_collector()
        served = make_collector()
        with CollectorServer(served, tcp_port=None) as srv:
            tx = ReliableUDPSender(
                "127.0.0.1", srv.udp_port, max_records=8,
                drop_fn=lambda seq, attempt: bool(rng.random() < 0.35),
                **FAST_RTO,
            )
            cols = batch(300)
            direct.ingest_batch(*cols, now=1.0)
            tx.send_batch(*cols, now=1.0)
            tx.flush()
            srv.wait_for_records(300, timeout=30)
            srv.drain()
            # Retransmits and duplicate frames happened on the wire,
            # yet the collector saw the batch exactly once.
            assert tx.retransmits > 0
            assert served.snapshot().as_dict() == direct.snapshot().as_dict()

    def test_unreachable_sink_raises_delivery_error(self):
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            tx = ReliableUDPSender(
                "127.0.0.1", srv.udp_port, max_records=8, max_retries=3,
                drop_fn=lambda seq, attempt: True, **FAST_RTO,
            )
            tx.send_batch(*batch(8), now=1.0)
            with pytest.raises(DeliveryError):
                tx.flush(timeout=10.0)
            tx.sock.close()

    def test_fire_and_forget_udp_smoke(self):
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(50), now=1.0)
            srv.wait_for_records(50, timeout=10)
            assert srv.service_stats().acks_sent == 0

    def test_bad_datagram_counted_not_fatal(self):
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            probe.sendto(b"\xff" * 40, ("127.0.0.1", srv.udp_port))
            probe.close()
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(10), now=1.0)
            srv.wait_for_records(10, timeout=10)
            assert srv.service_stats().dropped_bad_frame == 1

    def test_poisoned_tcp_stream_drops_connection_only(self):
        with CollectorServer(make_collector(), udp_port=None) as srv:
            bad = socket.create_connection(("127.0.0.1", srv.tcp_port))
            bad.sendall(b"\xff" * 64)
            bad.close()
            deadline = time.monotonic() + 10
            while (srv.service_stats().dropped_bad_frame == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert srv.service_stats().dropped_bad_frame == 1
            # A fresh connection still works.
            with TCPSender("127.0.0.1", srv.tcp_port) as tx:
                tx.send_batch(*batch(20), now=1.0)
            srv.wait_for_records(20, timeout=10)

    def test_snapshot_carries_service_stats(self):
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(30), now=1.0)
            srv.wait_for_records(30, timeout=10)
            snap = srv.snapshot()
            assert snap.service is not None
            assert snap.service.records_ingested == 30
            assert snap.as_dict()["service"]["batches_ingested"] == 1
            # A bare collector snapshot stays service-less (and thus
            # ==-comparable with in-process runs).
            assert srv.collector.snapshot().as_dict()["service"] is None

    def test_wait_for_records_times_out_with_shortfall(self):
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            with pytest.raises(ServiceError, match="only 0 arrived"):
                srv.wait_for_records(10, timeout=0.1)

    def test_post_close_use_raises(self):
        srv = CollectorServer(make_collector(), tcp_port=None).start()
        srv.close()
        srv.close()  # idempotent
        with pytest.raises(ServiceError):
            srv.drain()
        with pytest.raises(ServiceError):
            srv.start()

    def test_make_sender_dispatch(self):
        with CollectorServer(make_collector()) as srv:
            tx = make_sender("udp", "127.0.0.1", srv.udp_port)
            assert isinstance(tx, ReliableUDPSender)
            tx.sock.close()
            tx = make_sender("udp-unreliable", "127.0.0.1", srv.udp_port)
            assert isinstance(tx, UDPSender)
            tx.close()
            tx = make_sender("tcp", "127.0.0.1", srv.tcp_port)
            assert isinstance(tx, TCPSender)
            tx.close()
        with pytest.raises(ValueError):
            make_sender("carrier-pigeon", "127.0.0.1", 1)


# -- post-close ingest parity ----------------------------------------------

class TestCollectorClosedParity:
    def test_serial_post_close_ingest_raises_typed(self):
        coll = make_collector()
        coll.ingest_batch(*batch(10), now=1.0)
        coll.close()
        with pytest.raises(CollectorClosedError):
            coll.ingest_batch(*batch(5), now=2.0)
        with pytest.raises(CollectorClosedError):
            coll.ingest(1, 2, 4, 3, now=2.0)

    def test_serial_reads_stay_valid_after_close(self):
        coll = make_collector()
        coll.ingest_batch(*batch(10), now=1.0)
        coll.close()
        assert coll.closed
        assert coll.snapshot().records == 10

    def test_parallel_post_close_raises_same_type(self):
        par = ParallelCollector(
            path_consumer_factory(UNIVERSE, digest_bits=8, num_hashes=1,
                                  seed=0),
            workers=2, num_shards=4, seed=0,
        )
        par.ingest_batch(*batch(10), now=1.0)
        par.close()
        with pytest.raises(CollectorClosedError):
            par.ingest_batch(*batch(5), now=2.0)

    def test_closed_error_is_runtime_error(self):
        # Existing callers catching RuntimeError keep working.
        assert issubclass(CollectorClosedError, RuntimeError)
        assert issubclass(CollectorClosedError, ReproError)


# -- query port -------------------------------------------------------------

class TestQueryHandler:
    def make_handler(self, coll=None):
        import threading
        return QueryHandler(coll or make_collector(), threading.Lock())

    def test_ping(self):
        assert self.make_handler().handle({"op": "ping"})["ok"] is True

    def test_unknown_op_and_bad_request(self):
        h = self.make_handler()
        assert h.handle({"op": "frobnicate"})["ok"] is False
        assert h.handle("not a dict")["ok"] is False

    def test_snapshot_dict(self):
        coll = make_collector()
        coll.ingest_batch(*batch(25), now=1.0)
        response = self.make_handler(coll).handle({"op": "snapshot"})
        assert response["ok"] and response["snapshot"]["records"] == 25

    def test_flow_known_and_unknown(self):
        coll = make_collector()
        coll.ingest_batch(*batch(25), now=1.0)
        h = self.make_handler(coll)
        known = h.handle({"op": "flow", "flow_id": 1})
        assert known["ok"] and known["known"] is True
        assert {"complete", "coverage", "result"} <= known.keys()
        unknown = h.handle({"op": "flow", "flow_id": 10**9})
        assert unknown["ok"] and unknown["known"] is False

    def test_flow_id_validation(self):
        h = self.make_handler()
        assert h.handle({"op": "flow", "flow_id": "seven"})["ok"] is False
        assert h.handle({"op": "flow", "flow_id": True})["ok"] is False

    def test_bulk_flows(self):
        coll = make_collector()
        coll.ingest_batch(*batch(25), now=1.0)
        response = self.make_handler(coll).handle(
            {"op": "flows", "flow_ids": [0, 1, 10**9]}
        )
        assert response["ok"]
        assert [f["known"] for f in response["flows"]] == [True, True, False]

    def test_stats_only_on_service_endpoints(self):
        assert self.make_handler().handle({"op": "stats"})["ok"] is False

    def test_jsonable_sanitises(self):
        out = jsonable({
            1: float("nan"), "inf": float("inf"),
            "arr": np.arange(3), "np": np.int64(7), "t": (1, 2),
        })
        assert out == {"1": None, "inf": None, "arr": [0, 1, 2],
                       "np": 7, "t": [1, 2]}
        json.dumps(out, allow_nan=False)


class TestQueryServer:
    def test_query_round_trips(self):
        import threading
        coll = make_collector()
        coll.ingest_batch(*batch(40), now=1.0)
        qs = QueryServer(coll, threading.Lock()).start()
        try:
            with QueryClient("127.0.0.1", qs.port) as client:
                assert client.ping()
                assert client.snapshot()["records"] == 40
                assert client.flow(1)["known"] is True
                with pytest.raises(QueryError):
                    client.request({"op": "nope"})
                # Malformed JSON gets an error response, and the
                # connection survives for the next request.
                client.sock.sendall(b"{broken\n")
                line = client._fh.readline()
                assert json.loads(line)["ok"] is False
                assert client.ping()
        finally:
            qs.close()

    def test_server_attached_query_port(self):
        with CollectorServer(make_collector(), tcp_port=None,
                             query_port=0) as srv:
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(30), now=1.0)
            srv.wait_for_records(30, timeout=10)
            with QueryClient("127.0.0.1", srv.query_port) as client:
                assert client.stats()["records_ingested"] == 30
                snap = client.snapshot()
                assert snap["records"] == 30
                assert snap["service"]["frames_received"] == 1


# -- driver transport -------------------------------------------------------

class TestDriverTransport:
    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            ReplayDriver(transport="smoke-signals")

    def test_udp_transport_bit_identical(self):
        trace = build_trace("incast", packets=1500, seed=0)
        base = ReplayDriver(batch_size=256, seed=0).replay(trace)
        over = ReplayDriver(batch_size=256, seed=0,
                            transport="udp").replay(trace)
        for field in ("records", "flows", "batches", "path_records",
                      "path_flows", "path_decoded", "path_correct",
                      "path_resets", "congestion_records",
                      "congestion_flows"):
            assert getattr(base, field) == getattr(over, field), field
        b_err, o_err = (base.congestion_median_rel_err,
                        over.congestion_median_rel_err)
        assert b_err == o_err or (b_err != b_err and o_err != o_err)
        assert over.transport == "udp" and over.wire_frames > 0
        assert base.transport == "in-process" and base.wire_frames == 0

    def test_tcp_transport_bit_identical(self):
        trace = build_trace("hadoop", packets=1500, seed=1)
        base = ReplayDriver(batch_size=256, seed=0).replay(trace)
        over = ReplayDriver(batch_size=256, seed=0,
                            transport="tcp").replay(trace)
        assert over.transport == "tcp"
        for field in ("records", "batches", "path_decoded", "path_correct"):
            assert getattr(base, field) == getattr(over, field), field


# -- CLI --------------------------------------------------------------------

class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scenario == "hadoop" and args.udp_port == 0
        args = build_parser().parse_args(
            ["send", "--port", "9", "--transport", "tcp"]
        )
        assert args.transport == "tcp" and args.fn.__name__ == "cmd_send"

    def test_send_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["send"])

    def test_query_rejects_unknown_op(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--port", "1",
                                       "--op", "dance"])

    def test_end_to_end_subprocess(self, capsys):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--scenario", "incast", "--packets", "800",
             "--duration", "60"],
            cwd=REPO, stdout=subprocess.PIPE, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        try:
            ready = proc.stdout.readline()
            assert ready.startswith("SERVICE READY")
            ports = dict(kv.split("=") for kv in ready.split()[2:])
            # Feed it over reliable UDP with simulated loss, in-process.
            assert main(["send", "--scenario", "incast", "--packets", "800",
                         "--port", ports["udp"], "--loss", "0.1"]) == 0
            sent = json.loads(capsys.readouterr().out)
            assert sent["records"] == 800 and sent["acked_frames"] > 0
            # An ACK is an admission promise, not a fold barrier:
            # poll the query port until the ingest thread catches up.
            deadline = time.monotonic() + 15
            while True:
                assert main(["query", "--port", ports["query"],
                             "--op", "stats"]) == 0
                stats = json.loads(capsys.readouterr().out)["stats"]
                if stats["records_ingested"] == 800:
                    break
                assert time.monotonic() < deadline, stats
                time.sleep(0.05)
            assert main(["query", "--port", ports["query"],
                         "--flow-id", "0"]) == 0
            flow = json.loads(capsys.readouterr().out)
            assert flow["ok"] is True
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
            final = json.loads(out)
            assert final["records"] == 800
            assert final["service"]["records_ingested"] == 800
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()


# -- observability: metrics verb, scrape port, sender gauges ----------------

class TestObsService:
    def test_metrics_verb_round_trip(self):
        from repro.obs import MetricsRegistry
        obs = MetricsRegistry()
        coll = make_collector(obs=obs)
        with CollectorServer(coll, tcp_port=None, query_port=0,
                             obs=obs) as srv:
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(30), now=1.0)
            srv.wait_for_records(30, timeout=10)
            srv.drain()
            with QueryClient("127.0.0.1", srv.query_port) as client:
                fams = client.metrics()["families"]
        # One shared registry: the front door's counters and the
        # sink's per-batch instruments arrive in the same dump.
        assert fams["pint_service_records_ingested_total"][
            "samples"][0]["value"] == 30
        assert sum(
            s["value"]
            for s in fams["pint_collector_records_total"]["samples"]
        ) == 30
        depth = fams["pint_service_ingest_queue_depth"]["samples"][0]
        assert depth["value"] == 0  # drained
        assert fams["pint_service_fold_records"]["samples"][0]["count"] == 1

    def test_metrics_verb_without_obs_is_error_envelope(self):
        with CollectorServer(make_collector(), tcp_port=None,
                             query_port=0) as srv:
            with QueryClient("127.0.0.1", srv.query_port) as client:
                with pytest.raises(QueryError, match="no metrics"):
                    client.metrics()

    def test_metrics_port_serves_prometheus_text(self):
        import urllib.request
        from repro.obs import MetricsRegistry
        obs = MetricsRegistry()
        coll = make_collector(obs=obs)
        with CollectorServer(coll, tcp_port=None, obs=obs,
                             metrics_port=0) as srv:
            assert srv.metrics_port
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(20), now=1.0)
            srv.wait_for_records(20, timeout=10)
            with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.metrics_port}/metrics", timeout=5
            ) as resp:
                assert resp.status == 200
                body = resp.read().decode()
        assert "# TYPE pint_service_records_ingested_total counter" in body
        assert "pint_service_records_ingested_total 20" in body

    def test_sender_rtt_and_retransmit_instruments(self):
        from repro.obs import MetricsRegistry
        rng = np.random.default_rng(5)
        obs = MetricsRegistry()
        with CollectorServer(make_collector(), tcp_port=None) as srv:
            tx = ReliableUDPSender(
                "127.0.0.1", srv.udp_port, max_records=16,
                drop_fn=lambda seq, attempt: bool(rng.random() < 0.25),
                obs=obs, **FAST_RTO,
            )
            tx.send_batch(*batch(300), now=1.0)
            tx.flush()
            srv.wait_for_records(300, timeout=30)
            fams = obs.as_dict()["families"]
            assert fams["pint_sender_srtt_seconds"][
                "samples"][0]["value"] > 0.0
            assert fams["pint_sender_retransmits_total"][
                "samples"][0]["value"] == tx.retransmits > 0
            assert fams["pint_sender_acked_frames_total"][
                "samples"][0]["value"] == tx.acked_frames
            assert fams["pint_sender_inflight_frames"][
                "samples"][0]["value"] == 0  # all acked after flush
            tx.close()

    def test_serve_parser_accepts_metrics_port(self):
        args = build_parser().parse_args(["serve", "--metrics-port", "0"])
        assert args.metrics_port == 0
        assert build_parser().parse_args(["serve"]).metrics_port is None
        args = build_parser().parse_args(
            ["query", "--port", "1", "--op", "metrics"]
        )
        assert args.op == "metrics"


# -- query robustness: malformed and oversized requests ---------------------

_JSON_VALUES = st.recursive(
    st.none() | st.booleans() | st.integers()
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=8,
)


class TestQueryRobustness:
    @settings(max_examples=60, deadline=None)
    @given(request=_JSON_VALUES)
    def test_handler_never_raises_on_any_json_shape(self, request):
        import threading
        handler = QueryHandler(make_collector(), threading.Lock())
        response = handler.handle(request)
        assert isinstance(response, dict) and "ok" in response
        json.dumps(jsonable(response), allow_nan=False)

    def test_handler_bug_becomes_error_envelope(self):
        import threading
        # No collector at all: every verb that touches it explodes
        # internally, and the envelope -- not the exception -- surfaces.
        handler = QueryHandler(None, threading.Lock())
        response = handler.handle({"op": "snapshot"})
        assert response["ok"] is False
        assert "internal error" in response["error"]

    def test_junk_lines_never_drop_the_connection(self):
        import threading
        coll = make_collector()
        coll.ingest_batch(*batch(10), now=1.0)
        qs = QueryServer(coll, threading.Lock()).start()
        junk = [
            b"\x00\xff\xfe garbage",
            b"{",
            b"[1, 2, 3]",
            b'"just a string"',
            b"42",
            b"null",
            b'{"op": []}',
            b'{"op": "flow", "flow_id": {"deep": [1]}}',
            b'{"no_op_at_all": 1}',
        ]
        try:
            with QueryClient("127.0.0.1", qs.port) as client:
                for payload in junk:
                    client.sock.sendall(payload + b"\n")
                    line = client._fh.readline()
                    assert line, f"connection dropped on {payload!r}"
                    response = json.loads(line)
                    assert response["ok"] is False
                    assert "error" in response
                # After all that abuse, the protocol still works.
                assert client.ping()
                assert client.snapshot()["records"] == 10
        finally:
            qs.close()

    def test_oversized_line_answered_once_then_resyncs(self):
        import threading
        from repro.service.query import MAX_LINE
        coll = make_collector()
        coll.ingest_batch(*batch(10), now=1.0)
        qs = QueryServer(coll, threading.Lock()).start()
        try:
            with QueryClient("127.0.0.1", qs.port) as client:
                # Stream well past the cap without a newline: the
                # server must answer once and start discarding instead
                # of buffering without bound.
                chunk = b"x" * (1 << 16)
                for _ in range((MAX_LINE // len(chunk)) + 2):
                    client.sock.sendall(chunk)
                line = client._fh.readline()
                response = json.loads(line)
                assert response["ok"] is False
                assert "exceeds" in response["error"]
                # Finish the oversized line; the next request parses
                # cleanly on a re-synced stream.
                client.sock.sendall(b"tail of the monster line\n")
                assert client.ping()
                assert client.snapshot()["records"] == 10
        finally:
            qs.close()

"""Shared-memory ring transport: ring mechanics, edge cases, hygiene.

Covers the PR-10 tentpole contract at three levels:

* :class:`ShmRing` in isolation -- publication order, FIFO, slot reuse
  under wraparound, backpressure, tombstones, oversized-batch
  rejection, producer liveness checks, and segment lifecycle
  (close/unlink leaves nothing attachable behind);
* the :class:`ParallelCollector` shm transport against serial ground
  truth, including rings so small every batch takes the pipe fallback
  (the _SIDE/tombstone ordering protocol carries the whole stream) and
  mixed fits/doesn't-fit interleavings;
* failure hygiene -- a worker killed mid-stream gets a *fresh* ring
  (the old segment is unlinked, not leaked) and the merged snapshot
  stays bit-identical; a full run under ``-W error::UserWarning``
  produces no resource_tracker leak warnings.
"""

import subprocess
import sys
import textwrap
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.collector import (
    Collector,
    ParallelCollector,
    congestion_consumer_factory,
    path_consumer_factory,
)
from repro.collector.shm import (
    KIND_DATA,
    KIND_TOMBSTONE,
    PeerGoneError,
    RingSlot,
    ShmRing,
)
from repro.faults import FaultPlan, kill_worker

REPO = Path(__file__).resolve().parent.parent


def make_cols(n=3000, flows=50, seed=7):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, flows, n),
        np.arange(1, n + 1),
        rng.integers(2, 7, n),
        rng.integers(0, 256, n),
    )


def batch_of(n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, 40, n).astype(np.int64),
        np.arange(1, n + 1, dtype=np.int64),
        rng.integers(2, 7, n).astype(np.int64),
        rng.integers(0, 256, n).astype(np.int64),
    )


UNIVERSE = list(range(1, 33))


def path_factory():
    return path_consumer_factory(UNIVERSE, digest_bits=8, num_hashes=1,
                                 seed=3)


def congestion_factory():
    return congestion_consumer_factory(seed=3)


@pytest.fixture
def ring():
    r = ShmRing.create(slots=4, slot_records=64)
    yield r
    r.close()
    r.unlink()


# -- ring mechanics ----------------------------------------------------------

class TestShmRing:
    def test_push_peek_roundtrip(self, ring):
        fids, pids, hops, digs = batch_of(10)
        assert ring.try_push(fids, pids, hops, digs, t=2.5)
        slot = ring.peek()
        assert isinstance(slot, RingSlot)
        assert slot.kind == KIND_DATA
        assert slot.t == 2.5
        np.testing.assert_array_equal(slot.columns[0], fids)
        np.testing.assert_array_equal(slot.columns[1], pids)
        np.testing.assert_array_equal(slot.columns[2], hops)
        np.testing.assert_array_equal(slot.columns[3], digs)
        ring.advance()
        assert ring.peek() is None

    def test_fifo_order_across_wraparound(self):
        # 2 slots, 7 messages: every slot is reused at least twice and
        # the consumer still sees pids in push order.
        r = ShmRing.create(slots=2, slot_records=8)
        try:
            seen = []
            pushed = 0
            while pushed < 7:
                cols = batch_of(3, seed=pushed)
                cols[1][:] = pushed  # stamp the batch with its index
                if r.try_push(*cols, t=float(pushed)):
                    pushed += 1
                    continue
                slot = r.peek()
                assert slot is not None  # full ring implies ready slot
                seen.append(int(slot.columns[1][0]))
                r.advance()
            while (slot := r.peek()) is not None:
                seen.append(int(slot.columns[1][0]))
                r.advance()
            assert seen == list(range(7))
        finally:
            r.close()
            r.unlink()

    def test_full_ring_refuses_push(self, ring):
        cols = batch_of(4)
        for _ in range(ring.slots):
            assert ring.try_push(*cols, t=0.0)
        assert not ring.try_push(*cols, t=0.0)
        assert not ring.try_push_tombstone(1)
        ring.peek()
        ring.advance()  # one slot freed
        assert ring.try_push(*cols, t=0.0)

    def test_occupancy_tracks_both_sides(self, ring):
        assert ring.occupancy() == 0
        cols = batch_of(2)
        ring.try_push(*cols, t=0.0)
        ring.try_push(*cols, t=0.0)
        assert ring.occupancy() == 2
        ring.peek()
        ring.advance()
        assert ring.occupancy() == 1

    def test_fits_and_oversized_push_raises(self, ring):
        assert ring.fits(ring.slot_records)
        assert not ring.fits(ring.slot_records + 1)
        with pytest.raises(ValueError):
            ring.try_push(*batch_of(ring.slot_records + 1), t=0.0)

    def test_tombstone_carries_side_index(self, ring):
        assert ring.try_push_tombstone(42)
        slot = ring.peek()
        assert slot.kind == KIND_TOMBSTONE
        assert slot.side == 42
        assert all(len(c) == 0 for c in slot.columns)
        ring.advance()

    def test_push_wait_detects_dead_consumer(self, ring):
        cols = batch_of(1)
        for _ in range(ring.slots):
            ring.try_push(*cols, t=0.0)
        with pytest.raises(PeerGoneError, match="died"):
            ring.push_wait(
                lambda: ring.try_push(*cols, t=0.0), alive=lambda: False
            )

    def test_push_wait_times_out_on_wedged_consumer(self, ring):
        cols = batch_of(1)
        for _ in range(ring.slots):
            ring.try_push(*cols, t=0.0)
        with pytest.raises(PeerGoneError, match="wedged"):
            ring.push_wait(
                lambda: ring.try_push(*cols, t=0.0),
                alive=lambda: True,
                timeout=0.05,
            )

    def test_attach_sees_producer_writes(self, ring):
        peer = ShmRing.attach(*ring.spec("fork"))
        try:
            fids, pids, hops, digs = batch_of(5)
            ring.try_push(fids, pids, hops, digs, t=9.0)
            slot = peer.peek()
            assert slot is not None and slot.t == 9.0
            np.testing.assert_array_equal(slot.columns[0], fids)
            peer.advance()
            # Consumer progress is visible producer-side.
            assert ring.occupancy() == 0
        finally:
            # The RingSlot holds views into the segment; drop it so
            # close() can actually unmap (the contract callers obey).
            slot = None
            peer.close()

    def test_close_and_unlink_remove_the_segment(self):
        r = ShmRing.create(slots=2, slot_records=4)
        name = r.name
        r.close()
        r.unlink()
        r.unlink()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_create_validation(self):
        with pytest.raises(ValueError):
            ShmRing.create(slots=1)
        with pytest.raises(ValueError):
            ShmRing.create(slot_records=0)


# -- transport equivalence ---------------------------------------------------

def run_equivalence(factory, cols, batch=333, **par_kw):
    serial = Collector(factory(), num_shards=8, seed=1)
    fids, pids, hops, digs = cols
    now = 0.0
    with ParallelCollector(
        factory(), workers=2, num_shards=8, seed=1, **par_kw
    ) as par:
        for lo in range(0, len(fids), batch):
            hi = min(lo + batch, len(fids))
            now += 1.0
            serial.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                digs[lo:hi], now=now)
            par.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                             digs[lo:hi], now=now)
        par.drain()
        snap = par.snapshot()
        results = {int(f): par.result(int(f)) for f in np.unique(fids)}
    assert snap.as_dict() == serial.snapshot().as_dict()
    for fid, res in results.items():
        assert res == serial.result(fid)


class TestShmTransportEquivalence:
    def test_shm_matches_serial(self):
        run_equivalence(path_factory, make_cols(), transport="shm")

    def test_tiny_ring_forces_fallback_everywhere(self):
        # slot_records=16 < every batch: the whole stream travels the
        # _SIDE/tombstone pipe fallback, in order.
        run_equivalence(
            congestion_factory, make_cols(n=2000),
            transport="shm", ring_records=16,
        )

    def test_mixed_fit_and_fallback_batches(self):
        # Alternate batches above/below slot capacity so ring slots
        # and pipe fallbacks interleave within one stream.
        factory = congestion_factory
        serial = Collector(factory(), num_shards=8, seed=1)
        fids, pids, hops, digs = make_cols(n=4000)
        with ParallelCollector(
            factory(), workers=2, num_shards=8, seed=1,
            transport="shm", ring_records=256,
        ) as par:
            lo, now, step = 0, 0.0, 0
            while lo < len(fids):
                size = 100 if step % 2 == 0 else 700  # fits / falls back
                hi = min(lo + size, len(fids))
                now += 1.0
                serial.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                    digs[lo:hi], now=now)
                par.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                 digs[lo:hi], now=now)
                lo, step = hi, step + 1
            par.drain()
            assert par.snapshot().as_dict() == serial.snapshot().as_dict()

    def test_scalar_ingest_over_shm_transport(self):
        factory = congestion_factory
        serial = Collector(factory(), num_shards=4, seed=1)
        with ParallelCollector(
            factory(), workers=2, num_shards=4, seed=1, transport="shm",
        ) as par:
            for i in range(60):
                serial.ingest(i % 9 + 1, i, 4, i % 256, now=float(i))
                par.ingest(i % 9 + 1, i, 4, i % 256, now=float(i))
            par.drain()
            assert par.snapshot().as_dict() == serial.snapshot().as_dict()

    def test_pipe_transport_still_available(self):
        run_equivalence(path_factory, make_cols(n=1500), transport="pipe")

    def test_transport_validation(self):
        factory = congestion_factory
        with pytest.raises(ValueError):
            ParallelCollector(factory(), workers=2, num_shards=4,
                              transport="socket")
        with pytest.raises(ValueError):
            ParallelCollector(factory(), workers=2, num_shards=4,
                              ring_slots=1)
        with pytest.raises(ValueError):
            ParallelCollector(factory(), workers=2, num_shards=4,
                              ring_records=0)


# -- failure hygiene ---------------------------------------------------------

class TestShmFailureHygiene:
    def test_killed_worker_gets_fresh_ring_old_segment_unlinked(self):
        cols = make_cols()
        factory = path_factory
        serial = Collector(factory(), num_shards=8, seed=1)
        fids, pids, hops, digs = cols
        plan = FaultPlan([kill_worker(1, at_batch=3)])
        par = ParallelCollector(
            factory(), workers=2, num_shards=8, seed=1,
            checkpoint_every=4, faults=plan, transport="shm",
        ).start()
        try:
            old_names = [r.name for r in par._rings]
            now = 0.0
            for lo in range(0, len(fids), 300):
                hi = min(lo + 300, len(fids))
                now += 1.0
                serial.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                    digs[lo:hi], now=now)
                par.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                                 digs[lo:hi], now=now)
            par.drain()
            snap = par.snapshot()
            assert plan.fired == [("kill", "worker=1", 3)]
            assert snap.recovery.restarts == 1
            assert snap.recovery.records_lost == 0
            assert snap.as_dict() == serial.snapshot().as_dict()
            # The replacement worker speaks over a *new* segment and
            # the dead worker's segment is gone from /dev/shm.
            assert par._rings[1].name != old_names[1]
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=old_names[1])
        finally:
            par.close()

    def test_close_unlinks_every_segment(self):
        par = ParallelCollector(
            congestion_factory(), workers=2, num_shards=4, seed=1,
            transport="shm",
        ).start()
        names = [r.name for r in par._rings]
        assert len(names) == 2
        par.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_no_resource_tracker_leak_warnings(self):
        # A full start/ingest/snapshot/close cycle under
        # warnings-as-errors: any "leaked shared_memory objects"
        # UserWarning from the resource tracker turns into a traceback
        # on stderr and fails the assertion.
        script = textwrap.dedent("""
            import numpy as np
            from repro.collector import (
                ParallelCollector, congestion_consumer_factory,
            )
            rng = np.random.default_rng(0)
            with ParallelCollector(
                congestion_consumer_factory(seed=3), workers=2,
                num_shards=4, seed=1, transport="shm",
            ) as par:
                for i in range(4):
                    par.ingest_batch(
                        rng.integers(1, 30, 500), np.arange(500),
                        rng.integers(2, 7, 500), rng.integers(0, 256, 500),
                    )
                par.drain()
                par.snapshot()
            print("OK")
        """)
        proc = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", "-c", script],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin",
                 "PYTHONWARNINGS": "error::UserWarning"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked" not in proc.stderr
        assert "Traceback" not in proc.stderr

"""Tests for the low-level mixing primitives."""

import numpy as np
from hypothesis import given, strategies as st

from repro.hashing import mix

U64 = st.integers(min_value=0, max_value=mix.MASK64)


class TestMix64:
    def test_deterministic(self):
        assert mix.mix64(12345) == mix.mix64(12345)

    def test_zero_maps_away_from_zero(self):
        assert mix.mix64(1) != 1

    @given(U64)
    def test_stays_in_64_bits(self, x):
        assert 0 <= mix.mix64(x) <= mix.MASK64

    @given(U64)
    def test_bijective_on_samples(self, x):
        # splitmix64's finaliser is a bijection; distinct nearby inputs
        # must not collide.
        assert mix.mix64(x) != mix.mix64(x ^ 1)

    def test_avalanche_rough(self):
        # Flipping one input bit should flip roughly half the output bits.
        flips = bin(mix.mix64(0xDEADBEEF) ^ mix.mix64(0xDEADBEEE)).count("1")
        assert 16 <= flips <= 48


class TestCombine:
    def test_order_sensitive(self):
        assert mix.combine(0, 1, 2) != mix.combine(0, 2, 1)

    def test_seed_sensitive(self):
        assert mix.combine(1, 5) != mix.combine(2, 5)

    @given(U64, U64)
    def test_matches_begin_fold(self, seed, part):
        assert mix.combine(seed, part) == mix.fold(mix.begin(seed), part)

    def test_empty_parts(self):
        assert mix.combine(7) == mix.begin(7)


class TestToUnit:
    @given(U64)
    def test_range(self, x):
        assert 0.0 <= mix.to_unit(x) < 1.0

    def test_uniformity_rough(self):
        vals = [mix.to_unit(mix.mix64(i)) for i in range(4000)]
        assert abs(sum(vals) / len(vals) - 0.5) < 0.03


class TestVectorisedAgreement:
    @given(st.lists(U64, min_size=1, max_size=50), U64)
    def test_fold_array_matches_scalar(self, parts, seed):
        acc = mix.begin(seed)
        arr = mix.fold_array(acc, np.array(parts, dtype=np.uint64))
        expected = [mix.fold(acc, p) for p in parts]
        assert [int(v) for v in arr] == expected

    @given(st.lists(U64, min_size=1, max_size=50), U64)
    def test_combine_array_matches_scalar(self, parts, seed):
        arr = mix.combine_array(seed, np.array(parts, dtype=np.uint64))
        expected = [mix.combine(seed, p) for p in parts]
        assert [int(v) for v in arr] == expected

    @given(st.lists(U64, min_size=1, max_size=50))
    def test_mix64_array_matches_scalar(self, xs):
        arr = mix.mix64_array(np.array(xs, dtype=np.uint64))
        assert [int(v) for v in arr] == [mix.mix64(x) for x in xs]

    def test_to_unit_array(self):
        xs = np.array([0, 1 << 63, mix.MASK64], dtype=np.uint64)
        out = mix.to_unit_array(xs)
        assert out[0] == 0.0
        assert abs(out[1] - 0.5) < 1e-12
        assert out[2] < 1.0


class TestStringToInt:
    def test_deterministic_across_calls(self):
        assert mix.string_to_int("g") == mix.string_to_int("g")

    def test_distinct_names(self):
        names = ["g", "h", "layer-select", "fragment-select", ""]
        vals = {mix.string_to_int(n) for n in names}
        assert len(vals) == len(names)

    def test_unicode_ok(self):
        assert isinstance(mix.string_to_int("λ-queue"), int)

"""Edge cases and failure-injection across modules."""

import pytest

from repro.coding import (
    DistributedMessage,
    FragmentDecoder,
    PathEncoder,
    baseline_scheme,
)
from repro.exceptions import (
    BudgetError,
    ConfigurationError,
    DecodingError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.hashing import GlobalHash, random_bitvector, set_bits
from repro.sim import INTRecord, SimPacket
from repro.sim.packet import ACK_BYTES, BASE_HEADER_BYTES


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (BudgetError, ConfigurationError, DecodingError,
                    SimulationError, TopologyError):
            assert issubclass(exc, ReproError)

    def test_budget_is_configuration(self):
        assert issubclass(BudgetError, ConfigurationError)


class TestBitvectorMultiWord:
    def test_k_beyond_64_bits(self):
        g = GlobalHash(3, "bv")
        k = 150
        vec = random_bitvector(g, 42, 0, k)
        assert 0 <= vec < (1 << k)
        # Bits beyond one machine word must actually get set sometimes.
        high_bits = sum(
            1 for pid in range(200)
            if random_bitvector(g, pid, 0, k) >> 64
        )
        assert high_bits > 150

    def test_set_bits_roundtrip(self):
        mask = (1 << 3) | (1 << 77) | (1 << 149)
        assert set_bits(mask) == [3, 77, 149]

    def test_set_bits_empty(self):
        assert set_bits(0) == []

    def test_invalid_k(self):
        g = GlobalHash(0)
        with pytest.raises(ValueError):
            random_bitvector(g, 1, 0, 0)


class TestPacketAccounting:
    def test_wire_bytes_data(self):
        pkt = SimPacket(pid=1, flow_id=1, seq=0, payload_bytes=1000)
        assert pkt.wire_bytes == 1000 + BASE_HEADER_BYTES

    def test_wire_bytes_ack_ignores_payload_field(self):
        ack = SimPacket(pid=1, flow_id=1, seq=0, payload_bytes=0, is_ack=True)
        assert ack.wire_bytes == ACK_BYTES

    def test_telemetry_grows_wire(self):
        pkt = SimPacket(pid=1, flow_id=1, seq=0, payload_bytes=500,
                        fixed_overhead_bytes=2, int_overhead_bytes=24)
        assert pkt.wire_bytes == 500 + BASE_HEADER_BYTES + 26

    def test_int_record_fields(self):
        rec = INTRecord(timestamp=1.0, queue_bytes=100, tx_bytes=5000,
                        link_rate_bps=1e9)
        assert rec.queue_bytes == 100


class TestFragmentDecoderEdges:
    def test_missing_counts_in_whole_hops(self):
        dec = FragmentDecoder(k=3, value_bits=32, scheme=baseline_scheme(),
                              digest_bits=8)
        assert dec.num_fragments == 4
        assert dec.missing == 3  # nothing decoded yet
        assert not dec.is_complete

    def test_path_raises_before_complete(self):
        dec = FragmentDecoder(k=2, value_bits=16, scheme=baseline_scheme(),
                              digest_bits=8)
        with pytest.raises(DecodingError):
            dec.path()

    def test_value_bits_validation(self):
        with pytest.raises(ValueError):
            FragmentDecoder(k=2, value_bits=0, scheme=baseline_scheme())


class TestEncoderValidation:
    def test_zero_digest_packets_exist_in_xor_scheme(self):
        # Packets no encoder touched keep the zero digest the source
        # wrote; the decoder must simply skip them (no crash).
        from repro.coding import xor_scheme

        msg = DistributedMessage((5, 9))
        enc = PathEncoder(msg, xor_scheme(0.1), digest_bits=8, mode="raw")
        zeros = sum(
            1 for pid in range(500) if enc.encode(pid) == (0,)
        )
        assert zeros > 300  # P(no encoder acts) = 0.81

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            PathEncoder(DistributedMessage((1,)), baseline_scheme(),
                        mode="bogus")

    def test_num_hashes_requires_hash_mode(self):
        with pytest.raises(ValueError):
            PathEncoder(DistributedMessage((1,)), baseline_scheme(),
                        digest_bits=8, mode="raw", num_hashes=2)

    def test_bit_overhead_property(self):
        uni = tuple(range(10))
        enc = PathEncoder(DistributedMessage((1, 2), uni), baseline_scheme(),
                          digest_bits=4, num_hashes=2)
        assert enc.bit_overhead == 8


class TestHPCCRecordHandling:
    def test_first_ack_gives_no_u(self):
        """The INT feedback needs two samples for a rate delta."""
        from repro.net import fat_tree
        from repro.sim import Flow, INTTelemetry, Network, Simulator

        topo = fat_tree(4)
        net = Network(topo, Simulator(), link_rate_bps=1e8,
                      telemetry=INTTelemetry(3))
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 5_000, 0.0, transport="hpcc")
        sender = flow.sender
        recs = [INTRecord(1.0, 0, 1000, 1e8)]
        assert sender._u_from_int(recs) is None  # first sample
        recs2 = [INTRecord(1.001, 0, 2000, 1e8)]
        u = sender._u_from_int(recs2)
        assert u is not None and u > 0

    def test_path_change_resets_records(self):
        from repro.net import fat_tree
        from repro.sim import Flow, INTTelemetry, Network, Simulator

        topo = fat_tree(4)
        net = Network(topo, Simulator(), link_rate_bps=1e8,
                      telemetry=INTTelemetry(3))
        h = topo.hosts
        flow = Flow(net, 1, h[0], h[-1], 5_000, 0.0, transport="hpcc")
        sender = flow.sender
        sender._u_from_int([INTRecord(1.0, 0, 1000, 1e8)])
        # Different record count (ECMP reroute): must re-baseline.
        assert sender._u_from_int(
            [INTRecord(1.1, 0, 9999, 1e8), INTRecord(1.1, 0, 1, 1e8)]
        ) is None

"""Seeded fault injection + service-side resilience (repro.faults).

The chaos half of the PR-8 contract: the FaultPlan DSL is
deterministic and logs what it fired; the server's frame faults are
counted-and-dropped, never folded; reliable UDP stays exactly-once
*through* injected frame corruption (retransmits cover the chaos);
retry pacing is seeded jittered exponential backoff with a total-send
deadline; the TCP sender redials a restarted server; and the serve CLI
checkpoints on SIGTERM and resumes with ``--restore``.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.collector import (
    Collector,
    ParallelCollector,
    path_consumer_factory,
)
from repro.faults import (
    FaultPlan,
    FaultSpec,
    corrupt_checkpoint,
    corrupt_frame,
    drop_checkpoint,
    drop_frame,
    kill_worker,
    stall_queue,
    truncate_frame,
    wedge_worker,
)
from repro.service import (
    CollectorServer,
    DeliveryError,
    ReliableUDPSender,
    ServiceError,
    TCPSender,
    UDPSender,
)
from repro.service.__main__ import main

UNIVERSE = list(range(1, 33))
REPO = Path(__file__).resolve().parent.parent
FAST_RTO = dict(min_rto=0.005, initial_rto=0.02, max_rto=0.1)


def make_collector(**kw):
    kw.setdefault("num_shards", 4)
    kw.setdefault("seed", 0)
    return Collector(
        path_consumer_factory(UNIVERSE, digest_bits=8, num_hashes=1, seed=0),
        **kw,
    )


def batch(n, base=0):
    fids = np.arange(base, base + n, dtype=np.int64) % 17
    pids = np.arange(base, base + n, dtype=np.int64)
    hops = np.full(n, 4, dtype=np.int64)
    digs = (pids * 31 + 7) % 251
    return fids, pids, hops, digs


# -- the DSL ----------------------------------------------------------------

class TestFaultSpecs:
    def test_constructors_map_to_kinds(self):
        assert kill_worker(1, 3).kind == "kill"
        assert wedge_worker(0, 2).kind == "wedge"
        assert drop_checkpoint(0).at is None
        assert corrupt_checkpoint(1, at=2).at == 2
        assert corrupt_frame(5).kind == "corrupt_frame"
        assert truncate_frame(5).kind == "truncate_frame"
        assert drop_frame(5).kind == "drop_frame"
        assert stall_queue(1, 0.5).seconds == 0.5

    def test_pinned_ordinal_fires_exactly_once(self):
        spec = FaultSpec("kill", worker=0, at=3)
        assert not spec._matches(2)
        assert spec._matches(3)
        assert not spec._matches(3)  # spent
        assert not spec._matches(4)

    def test_recurring_fires_every_time(self):
        spec = FaultSpec("drop_checkpoint", worker=0, at=None)
        assert all(spec._matches(i) for i in range(1, 5))

    def test_worker_faults_filter_by_worker_and_log(self):
        plan = FaultPlan([kill_worker(1, 3), kill_worker(0, 3)])
        assert plan.worker_faults(2, 3) == []
        due = plan.worker_faults(1, 3)
        assert len(due) == 1 and due[0].worker == 1
        assert plan.fired == [("kill", "worker=1", 3)]

    def test_checkpoint_fault_fates(self):
        plan = FaultPlan([drop_checkpoint(0, at=1),
                          corrupt_checkpoint(0, at=2)])
        assert plan.checkpoint_fault(0, 1) == "drop"
        assert plan.checkpoint_fault(0, 2) == "corrupt"
        assert plan.checkpoint_fault(0, 3) is None
        assert plan.checkpoint_fault(1, 1) is None

    def test_reset_rearms_and_clears_log(self):
        plan = FaultPlan([kill_worker(0, 1)])
        plan.worker_faults(0, 1)
        assert plan.fired
        plan.reset()
        assert plan.fired == []
        assert plan.worker_faults(0, 1)  # fires again after reset

    def test_chaos_is_seed_deterministic(self):
        a = FaultPlan.chaos(workers=4, max_batch=100, seed=9, kills=2)
        b = FaultPlan.chaos(workers=4, max_batch=100, seed=9, kills=2)
        assert [(s.worker, s.at) for s in a.specs] == \
               [(s.worker, s.at) for s in b.specs]
        assert len(a.specs) == 2
        assert all(1 <= s.at <= 100 for s in a.specs)
        with pytest.raises(ValueError):
            FaultPlan.chaos(workers=2, max_batch=10, kills=3)

    def test_mutate_frame_kinds(self):
        frame = b"PI" + bytes(30)
        drop = FaultPlan([drop_frame(1)])
        assert drop.mutate_frame(frame) is None
        trunc = FaultPlan([truncate_frame(1)])
        assert trunc.mutate_frame(frame) == frame[: len(frame) // 2]
        corrupt = FaultPlan([corrupt_frame(1)])
        mutated = corrupt.mutate_frame(frame)
        assert mutated[0] != frame[0] and mutated[1:] == frame[1:]
        # Ordinals advance even on clean frames.
        clean = FaultPlan([corrupt_frame(2)])
        assert clean.mutate_frame(frame) == frame
        assert clean.mutate_frame(frame) != frame


# -- server-side frame faults ----------------------------------------------

class TestServerFrameFaults:
    def _frame(self, n=4):
        from repro.service import encode_frame
        fids, pids, hops, digs = batch(n)
        return encode_frame(fids, pids, hops, digs, 1.0, 0)

    def test_corrupted_frame_counted_not_folded(self):
        plan = FaultPlan([corrupt_frame(1)])
        srv = CollectorServer(make_collector(), faults=plan)
        srv._on_datagram(self._frame(), ("127.0.0.1", 9))
        assert srv.service_stats().dropped_bad_frame == 1
        assert plan.fired == [("corrupt_frame", "frame", 1)]

    def test_truncated_frame_counted_not_folded(self):
        plan = FaultPlan([truncate_frame(1)])
        srv = CollectorServer(make_collector(), faults=plan)
        srv._on_datagram(self._frame(), ("127.0.0.1", 9))
        assert srv.service_stats().dropped_bad_frame == 1

    def test_dropped_frame_never_arrives(self):
        plan = FaultPlan([drop_frame(1)])
        srv = CollectorServer(make_collector(), faults=plan)
        srv._on_datagram(self._frame(), ("127.0.0.1", 9))
        assert srv.service_stats().frames_received == 0
        assert srv._queue.qsize() == 0
        assert plan.fired == [("drop_frame", "frame", 1)]

    def test_reliable_exactly_once_through_frame_chaos(self):
        # Frames 2 and 3 are corrupted/dropped on arrival; the
        # sender's RTO covers both and the sink still folds every
        # record exactly once -- bit-identical to in-process ingest.
        plan = FaultPlan([corrupt_frame(2), drop_frame(3)])
        direct = make_collector()
        served = make_collector()
        with CollectorServer(served, tcp_port=None, faults=plan) as srv:
            tx = ReliableUDPSender("127.0.0.1", srv.udp_port,
                                   max_records=16, **FAST_RTO)
            cols = batch(200)
            direct.ingest_batch(*cols, now=1.0)
            tx.send_batch(*cols, now=1.0)
            tx.flush()
            tx.sock.close()
            srv.wait_for_records(200, timeout=30)
            srv.drain()
            assert tx.retransmits >= 2
            kinds = {k for k, _, _ in plan.fired}
            assert kinds == {"corrupt_frame", "drop_frame"}
            assert served.snapshot().as_dict() == direct.snapshot().as_dict()

    def test_stall_queue_delays_but_never_drops(self):
        plan = FaultPlan([stall_queue(1, 0.2)])
        with CollectorServer(make_collector(), tcp_port=None,
                             faults=plan) as srv:
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(50), now=1.0)
            srv.wait_for_records(50, timeout=10)
            assert ("stall_queue", "queue", 1) in plan.fired
            assert srv.service_stats().records_ingested == 50


# -- retry pacing -----------------------------------------------------------

class TestScaledRto:
    def make_tx(self, **kw):
        kw.setdefault("rto_seed", 42)
        tx = ReliableUDPSender("127.0.0.1", 1, **kw)
        tx.sock.close()
        return tx

    def test_zero_jitter_is_pure_exponential(self):
        tx = self.make_tx(jitter=0.0, backoff=2.0, initial_rto=0.1,
                          max_rto=10.0)
        assert tx._scaled_rto(0) == pytest.approx(0.1)
        assert tx._scaled_rto(1) == pytest.approx(0.2)
        assert tx._scaled_rto(3) == pytest.approx(0.8)

    def test_backoff_caps_at_max_rto(self):
        tx = self.make_tx(jitter=0.0, backoff=2.0, initial_rto=0.1,
                          max_rto=0.5)
        assert tx._scaled_rto(10) == pytest.approx(0.5)

    def test_jitter_bounded_and_seed_deterministic(self):
        a = self.make_tx(jitter=0.25, initial_rto=0.1)
        b = self.make_tx(jitter=0.25, initial_rto=0.1)
        seq_a = [a._scaled_rto(0) for _ in range(8)]
        seq_b = [b._scaled_rto(0) for _ in range(8)]
        assert seq_a == seq_b  # same seed, same jitter stream
        assert all(0.1 <= v <= 0.1 * 1.25 for v in seq_a)
        assert len(set(seq_a)) > 1  # actually jittered

    def test_pacing_params_validated(self):
        with pytest.raises(ValueError):
            self.make_tx(backoff=0.5)
        with pytest.raises(ValueError):
            self.make_tx(jitter=1.0)
        with pytest.raises(ValueError):
            self.make_tx(jitter=-0.1)

    def test_send_deadline_caps_window_wait(self):
        # window=1 and a black-hole drop_fn: the second frame can
        # never enter the window; the *total* deadline fires long
        # before per-frame max_retries would.
        tx = ReliableUDPSender(
            "127.0.0.1", 1, max_records=8, window=1, max_retries=10_000,
            send_timeout=0.3, drop_fn=lambda seq, attempt: True,
            **FAST_RTO,
        )
        start = time.monotonic()
        with pytest.raises(DeliveryError, match="window still full"):
            tx.send_batch(*batch(32), now=1.0)
        assert time.monotonic() - start < 5.0
        tx.sock.close()


# -- TCP reconnect ----------------------------------------------------------

class TestTCPReconnect:
    def test_reconnects_across_server_restart(self):
        srv1 = CollectorServer(make_collector(), udp_port=None).start()
        port = srv1.tcp_port
        tx = TCPSender("127.0.0.1", port, reconnect_base=0.01,
                       reconnect_seed=0)
        try:
            tx.send_batch(*batch(100), now=1.0)
            srv1.wait_for_records(100, timeout=10)
            srv1.close(close_collector=True)
            # Same port, fresh server: the sender must notice the dead
            # connection and redial (at-least-once: the batch that
            # straddles the restart is resent whole).
            with CollectorServer(make_collector(), udp_port=None,
                                 tcp_port=port) as srv2:
                deadline = time.monotonic() + 15
                while tx.reconnects == 0:
                    assert time.monotonic() < deadline
                    tx.send_batch(*batch(50, base=1000), now=2.0)
                    time.sleep(0.05)
                srv2.wait_for_records(50, timeout=10)
                assert tx.reconnects >= 1
                assert srv2.service_stats().records_ingested >= 50
        finally:
            tx.sock.close()

    def test_reconnect_exhaustion_raises_delivery_error(self):
        srv = CollectorServer(make_collector(), udp_port=None).start()
        port = srv.tcp_port
        tx = TCPSender("127.0.0.1", port, reconnect_attempts=2,
                       reconnect_base=0.01, reconnect_seed=0)
        srv.close(close_collector=True)
        with pytest.raises(DeliveryError, match="could not reconnect"):
            for _ in range(100):
                tx.send_batch(*batch(50), now=1.0)
                time.sleep(0.02)
        tx.sock.close()


# -- server checkpoint/restore ----------------------------------------------

class TestServerCheckpoint:
    def test_save_then_restore_reproduces_state(self, tmp_path):
        path = str(tmp_path / "srv.ckpt")
        original = make_collector()
        with CollectorServer(original, tcp_port=None) as srv:
            with UDPSender("127.0.0.1", srv.udp_port) as tx:
                tx.send_batch(*batch(120), now=1.0)
            srv.wait_for_records(120, timeout=10)
            srv.save_checkpoint(path)
        restored = make_collector()
        srv2 = CollectorServer(restored, tcp_port=None)
        srv2.restore_checkpoint(path)
        assert restored.snapshot().as_dict() == original.snapshot().as_dict()
        for fid in range(17):
            assert restored.result(fid) == original.result(fid)

    def test_parallel_collector_refused_with_typed_error(self, tmp_path):
        # A ParallelCollector's state lives in its workers; the
        # server-side file checkpoint only speaks serial collectors.
        par = ParallelCollector(
            path_consumer_factory(UNIVERSE, digest_bits=8, num_hashes=1,
                                  seed=0),
            workers=2, num_shards=4,
        )
        srv = CollectorServer(par, tcp_port=None)
        with pytest.raises(ServiceError, match="checkpoint"):
            srv.save_checkpoint(str(tmp_path / "x.ckpt"))
        with pytest.raises(ServiceError, match="restore"):
            srv.restore_checkpoint(str(tmp_path / "x.ckpt"))
        par.close()

    def test_restore_missing_file_raises_file_not_found(self, tmp_path):
        srv = CollectorServer(make_collector(), tcp_port=None)
        with pytest.raises(FileNotFoundError):
            srv.restore_checkpoint(str(tmp_path / "absent.ckpt"))


# -- serve CLI: checkpoint on SIGTERM, --restore on boot --------------------

class TestServeCheckpointCLI:
    def _serve(self, tmp_path, *extra):
        return subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--scenario", "incast", "--packets", "600",
             "--duration", "60",
             "--checkpoint", str(tmp_path / "cli.ckpt"), *extra],
            cwd=REPO, stdout=subprocess.PIPE, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_sigterm_checkpoint_then_restore_resumes(self, tmp_path,
                                                     capsys):
        proc = self._serve(tmp_path)
        try:
            ready = proc.stdout.readline()
            assert ready.startswith("SERVICE READY")
            ports = dict(kv.split("=") for kv in ready.split()[2:])
            assert main(["send", "--scenario", "incast", "--packets",
                         "600", "--port", ports["udp"]]) == 0
            capsys.readouterr()
            deadline = time.monotonic() + 15
            while True:
                assert main(["query", "--port", ports["query"],
                             "--op", "stats"]) == 0
                stats = json.loads(capsys.readouterr().out)["stats"]
                if stats["records_ingested"] == 600:
                    break
                assert time.monotonic() < deadline, stats
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        lines = out.strip().splitlines()
        assert any(ln.startswith("CHECKPOINT SAVED") for ln in lines)
        first = json.loads(lines[-1])
        assert first["records"] == 600
        assert (tmp_path / "cli.ckpt").exists()

        # Boot a fresh process from the checkpoint: the restored
        # snapshot carries the pre-restart records without one frame
        # being resent.
        proc = self._serve(tmp_path, "--restore")
        try:
            restored = proc.stdout.readline()
            assert restored.startswith("RESTORED checkpoint=")
            ready = proc.stdout.readline()
            assert ready.startswith("SERVICE READY")
            ports = dict(kv.split("=") for kv in ready.split()[2:])
            assert main(["query", "--port", ports["query"],
                         "--op", "snapshot"]) == 0
            snap = json.loads(capsys.readouterr().out)["snapshot"]
            assert snap["records"] == 600
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_restore_without_checkpoint_path_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--scenario", "incast", "--packets", "100",
                  "--restore", "--duration", "0.1"])

    def test_restore_missing_file_is_fresh_start(self, tmp_path, capsys):
        # First boot of a recovery-configured service: nothing to
        # restore is normal, and the shutdown still writes the file.
        path = tmp_path / "fresh.ckpt"
        assert main(["serve", "--scenario", "incast", "--packets", "100",
                     "--checkpoint", str(path), "--restore",
                     "--duration", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "RESTORE SKIPPED" in out
        assert "CHECKPOINT SAVED" in out
        assert path.exists()

"""Tests for the Appendix A reference formulas."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    all_but_psi_fraction,
    baseline_packets,
    baseline_share,
    binomial_success_tail,
    coupon_collector_mean,
    coupon_collector_quantile,
    double_dixie_cup_mean,
    double_dixie_cup_tail,
    fragmentation_blowup,
    harmonic,
    hybrid_packets,
    hybrid_xor_probability,
    layer_probability,
    lnc_packets,
    log_log_star,
    log_star,
    num_xor_layers,
    partial_coupon_mean,
    partial_coupon_tail,
    theorem1_packets,
    theorem1_space,
    theorem3_packets,
    tower,
    xor_only_packets,
)


class TestHarmonicAndCoupons:
    def test_harmonic_basics(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_coupon_mean_k25(self):
        # Referenced implicitly by §4.2's k=25 example.
        assert coupon_collector_mean(25) == pytest.approx(25 * harmonic(25))

    def test_coupon_median_k25_matches_paper(self):
        # Paper §4.2: k=25 Baseline has median ~89 packets.
        assert 80 < coupon_collector_quantile(25, 0.5) < 100

    def test_coupon_p99_k25_matches_paper(self):
        # Paper §4.2: k=25 Baseline has 99th percentile ~189 packets.
        assert 170 < coupon_collector_quantile(25, 0.99) < 210

    def test_coupon_mean_against_simulation(self):
        rng = random.Random(0)
        k, trials = 10, 400
        total = 0
        for _ in range(trials):
            seen, n = set(), 0
            while len(seen) < k:
                seen.add(rng.randrange(k))
                n += 1
            total += n
        sim_mean = total / trials
        assert abs(sim_mean - coupon_collector_mean(k)) < 3.0

    def test_partial_mean_extremes(self):
        assert partial_coupon_mean(10, 0) == 0.0
        assert partial_coupon_mean(10, 10) == pytest.approx(coupon_collector_mean(10))

    def test_partial_tail_above_mean(self):
        assert partial_coupon_tail(20, 10, 0.05) > partial_coupon_mean(20, 10)

    def test_all_but_psi_reasonable(self):
        # Lemma 9: collecting all but 10% of 100 coupons at delta=5%.
        bound = all_but_psi_fraction(100, 0.1, 0.05)
        assert 100 * math.log(10) < bound < 100 * math.log(10) * 3

    def test_double_dixie_mean_single_copy(self):
        assert double_dixie_cup_mean(10, 1) == pytest.approx(
            coupon_collector_mean(10)
        )

    def test_double_dixie_tail_grows_with_copies(self):
        assert double_dixie_cup_tail(10, 5, 0.05) > double_dixie_cup_tail(
            10, 1, 0.05
        )

    def test_binomial_tail_lemma4(self):
        # Simulate: N trials at p should beat k successes w.p. >= 95%.
        rng = random.Random(1)
        k, p, delta = 30, 0.3, 0.05
        n_trials = math.ceil(binomial_success_tail(k, p, delta))
        fails = 0
        for _ in range(300):
            successes = sum(rng.random() < p for _ in range(n_trials))
            fails += successes <= k
        assert fails / 300 <= delta + 0.03

    def test_validation(self):
        with pytest.raises(ValueError):
            coupon_collector_mean(0)
        with pytest.raises(ValueError):
            partial_coupon_mean(5, 6)
        with pytest.raises(ValueError):
            coupon_collector_quantile(5, 0.0)


class TestIterated:
    def test_log_star_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_log_star_tiny(self):
        assert log_star(0.5) == 0

    def test_tower(self):
        assert tower(2, 0) == 1
        assert tower(2, 3) == 16
        assert tower(math.e, 2) == pytest.approx(math.e**math.e)

    def test_num_layers_matches_paper(self):
        # Appendix A.2: L=1 for d <= 15, L=2 for 16 <= d <= e^e^e.
        assert num_xor_layers(5) == 1
        assert num_xor_layers(10) == 1
        assert num_xor_layers(15) == 1
        assert num_xor_layers(16) == 2
        assert num_xor_layers(100) == 2
        assert num_xor_layers(1000) == 2

    def test_layer_probability_tower(self):
        # p_l = e^^(l-1) / d.
        assert layer_probability(1, 10) == pytest.approx(0.1)
        assert layer_probability(2, 10) == pytest.approx(math.e / 10)
        assert layer_probability(1, 1) == 1.0

    def test_baseline_share_range(self):
        for d in (2, 5, 25, 59, 1000):
            assert 0.3 < baseline_share(d) < 1.0

    def test_hybrid_probability_footnote8(self):
        # d <= 15: ln ln d < 1, so p = 1/ln d.
        assert hybrid_xor_probability(10) == pytest.approx(1 / math.log(10))
        # Large d: p = ln ln d / ln d.
        assert hybrid_xor_probability(256) == pytest.approx(
            math.log(math.log(256)) / math.log(256)
        )

    def test_log_log_star_positive(self):
        assert log_log_star(2) > 0
        assert log_log_star(1e9) > 0


class TestBounds:
    def test_theorem1_scaling(self):
        assert theorem1_packets(10, 0.1) == pytest.approx(
            2 * theorem1_packets(5, 0.1)
        )
        assert theorem1_packets(5, 0.05) > theorem1_packets(5, 0.1)

    def test_theorem1_space(self):
        assert theorem1_space(5, 0.1) == pytest.approx(50.0)

    def test_theorem3_beats_baseline_asymptotically(self):
        assert theorem3_packets(500) < baseline_packets(500)

    def test_scheme_ordering_large_k(self):
        # LNC < multilayer < hybrid-ish < xor-only ~ baseline for big k.
        k = 1000
        assert lnc_packets(k) < theorem3_packets(k)
        assert theorem3_packets(k) < xor_only_packets(k)
        assert hybrid_packets(k) < baseline_packets(k)

    def test_fragmentation_blowup(self):
        assert fragmentation_blowup(32, 8) == 4
        assert fragmentation_blowup(32, 32) == 1
        assert fragmentation_blowup(33, 8) == 5

    @given(st.integers(1, 10**6))
    @settings(max_examples=50)
    def test_theorem3_positive(self, k):
        assert theorem3_packets(k) >= k

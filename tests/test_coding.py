"""Tests for the distributed coding schemes (paper §4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import coupon_collector_mean
from repro.coding import (
    BASELINE,
    XOR,
    CodingScheme,
    DistributedMessage,
    FragmentDecoder,
    HashDecoder,
    Layer,
    LNCDecoder,
    LNCEncoder,
    PathEncoder,
    RawDecoder,
    baseline_scheme,
    hybrid_scheme,
    make_decoder,
    multilayer_scheme,
    packet_count_distribution,
    packets_to_decode,
    xor_scheme,
)
from repro.exceptions import DecodingError


def decode_roundtrip(message, scheme, digest_bits=8, num_hashes=1, seed=0,
                     mode="auto", max_packets=100000):
    encoder = PathEncoder(message, scheme, digest_bits, mode, num_hashes, seed)
    decoder = make_decoder(encoder)
    for pid in range(1, max_packets + 1):
        decoder.observe(pid, encoder.encode(pid))
        if decoder.is_complete:
            return decoder.path(), pid
    raise AssertionError("did not decode")


class TestMessage:
    def test_basic(self):
        msg = DistributedMessage((1, 2, 3))
        assert msg.k == 3
        assert msg.block_bits() == 2

    def test_universe_checked(self):
        with pytest.raises(ValueError):
            DistributedMessage((1, 2), universe=(1, 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistributedMessage(())

    def test_from_path(self):
        msg = DistributedMessage.from_path([10, 20], universe=[10, 20, 30])
        assert msg.blocks == (10, 20)
        assert 30 in msg.universe


class TestSchemes:
    def test_shares_must_sum(self):
        with pytest.raises(ValueError):
            CodingScheme((Layer(BASELINE),), (0.5,))

    def test_xor_layer_needs_p(self):
        with pytest.raises(ValueError):
            Layer(XOR, 0.0)

    def test_layer_selection_distribution(self):
        from repro.hashing import GlobalHash

        scheme = hybrid_scheme(25, tau=0.75)
        select = GlobalHash(0, "sel")
        picks = [scheme.layer_index(select, pid) for pid in range(10000)]
        share0 = picks.count(0) / len(picks)
        assert 0.72 < share0 < 0.78

    def test_multilayer_structure(self):
        scheme = multilayer_scheme(10)
        assert scheme.layers[0].kind == BASELINE
        assert len(scheme.layers) == 2  # L=1 for d<=15
        scheme2 = multilayer_scheme(100)
        assert len(scheme2.layers) == 3  # L=2 for d>=16

    def test_factories_validate(self):
        with pytest.raises(ValueError):
            hybrid_scheme(0)
        with pytest.raises(ValueError):
            multilayer_scheme(-1)
        with pytest.raises(ValueError):
            hybrid_scheme(10, tau=1.5)


class TestRawRoundtrip:
    @pytest.mark.parametrize(
        "scheme_factory",
        [baseline_scheme, lambda: xor_scheme(0.2), lambda: hybrid_scheme(8),
         lambda: multilayer_scheme(8)],
    )
    def test_all_schemes_decode(self, scheme_factory):
        blocks = tuple((i * 37) % 256 for i in range(8))
        msg = DistributedMessage(blocks)
        path, _ = decode_roundtrip(msg, scheme_factory(), digest_bits=8, mode="raw")
        assert path == list(blocks)

    def test_single_hop(self):
        msg = DistributedMessage((42,))
        path, n = decode_roundtrip(msg, baseline_scheme(), mode="raw")
        assert path == [42]
        assert n == 1

    def test_raw_rejects_wide_blocks(self):
        msg = DistributedMessage((1 << 20,))
        with pytest.raises(ValueError):
            PathEncoder(msg, baseline_scheme(), digest_bits=8, mode="raw")

    def test_baseline_packet_count_near_coupon(self):
        k = 12
        msg = DistributedMessage(tuple(range(k)))
        stats = packet_count_distribution(
            msg, baseline_scheme(), trials=40, digest_bits=8, mode="raw"
        )
        expected = coupon_collector_mean(k)
        assert 0.6 * expected < stats.mean < 1.6 * expected

    def test_hybrid_beats_baseline_k25(self):
        # The headline Fig. 5 effect.
        msg = DistributedMessage(tuple(range(25)))
        base = packet_count_distribution(
            msg, baseline_scheme(), trials=25, digest_bits=8, mode="raw"
        )
        hybrid = packet_count_distribution(
            msg, hybrid_scheme(25), trials=25, digest_bits=8, mode="raw"
        )
        assert hybrid.mean < base.mean
        assert hybrid.percentile(99) < base.percentile(99)

    def test_inconsistency_counter(self):
        # Feed digests from a *different* message: baseline packets must
        # eventually contradict decoded hops (the §7 multipath signal).
        msg_a = DistributedMessage((1, 2, 3, 4))
        msg_b = DistributedMessage((1, 2, 3, 5))
        enc_a = PathEncoder(msg_a, baseline_scheme(), 8, "raw")
        enc_b = PathEncoder(msg_b, baseline_scheme(), 8, "raw")
        dec = RawDecoder(4, baseline_scheme(), 8)
        for pid in range(1, 200):
            dec.observe(pid, enc_a.encode(pid))
        for pid in range(200, 400):
            dec.observe(pid, enc_b.encode(pid))
        assert dec.inconsistencies > 0

    def test_path_raises_if_incomplete(self):
        dec = RawDecoder(5, baseline_scheme(), 8)
        with pytest.raises(DecodingError):
            dec.path()


class TestHashRoundtrip:
    def test_basic_universe_decode(self):
        universe = tuple(range(1000, 1100))
        msg = DistributedMessage(tuple(range(1000, 1010)), universe)
        path, _ = decode_roundtrip(msg, multilayer_scheme(10), digest_bits=8)
        assert path == list(msg.blocks)

    def test_one_bit_budget(self):
        # The paper's b=1 configuration must still decode.
        universe = tuple(range(500, 532))
        msg = DistributedMessage(tuple(range(500, 505)), universe)
        path, n = decode_roundtrip(msg, multilayer_scheme(5), digest_bits=1)
        assert path == list(msg.blocks)
        assert n > 5  # 1-bit digests cannot be as fast as full values

    def test_two_independent_hashes(self):
        # 2x(b=8) needs fewer packets than 1x(b=8) on wide universes.
        universe = tuple(range(2000, 2400))
        msg = DistributedMessage(tuple(range(2000, 2012)), universe)
        single = packet_count_distribution(
            msg, multilayer_scheme(12), trials=15, digest_bits=8, num_hashes=1
        )
        double = packet_count_distribution(
            msg, multilayer_scheme(12), trials=15, digest_bits=8, num_hashes=2
        )
        assert double.mean <= single.mean

    def test_bigger_budget_fewer_packets(self):
        universe = tuple(range(3000, 3200))
        msg = DistributedMessage(tuple(range(3000, 3008)), universe)
        b4 = packet_count_distribution(
            msg, multilayer_scheme(8), trials=15, digest_bits=4
        )
        b8 = packet_count_distribution(
            msg, multilayer_scheme(8), trials=15, digest_bits=8
        )
        assert b8.mean <= b4.mean

    def test_candidates_shrink(self):
        universe = tuple(range(100, 400))
        msg = DistributedMessage(tuple(range(100, 105)), universe)
        enc = PathEncoder(msg, baseline_scheme(), 4)
        dec = make_decoder(enc)
        assert isinstance(dec, HashDecoder)
        before = dec.candidates_left(1)
        for pid in range(1, 40):
            dec.observe(pid, enc.encode(pid))
        assert dec.candidates_left(1) < before

    def test_hash_mode_needs_universe(self):
        msg = DistributedMessage((1, 2, 3))
        with pytest.raises(ValueError):
            PathEncoder(msg, baseline_scheme(), 8, "hash")

    def test_wrong_arity_rejected(self):
        universe = tuple(range(10))
        msg = DistributedMessage((1, 2), universe)
        enc = PathEncoder(msg, baseline_scheme(), 8, num_hashes=2)
        dec = make_decoder(enc)
        with pytest.raises(ValueError):
            dec.observe(1, (0,))


class TestFragmentRoundtrip:
    def test_wide_values_reassembled(self):
        blocks = tuple(0xABCD0000 + i for i in range(5))
        msg = DistributedMessage(blocks)
        enc = PathEncoder(msg, hybrid_scheme(5), digest_bits=8, mode="fragment")
        assert enc.num_fragments == 4
        dec = make_decoder(enc)
        assert isinstance(dec, FragmentDecoder)
        for pid in range(1, 50000):
            dec.observe(pid, enc.encode(pid))
            if dec.is_complete:
                break
        assert dec.path() == list(blocks)

    def test_fragment_needs_more_packets_than_hash(self):
        universe = tuple(0xA0000 + i for i in range(64))
        blocks = tuple(0xA0000 + i for i in range(5))
        frag_n = packets_to_decode(
            DistributedMessage(blocks), hybrid_scheme(5),
            digest_bits=8, mode="fragment", seed=3,
        )
        hash_n = packets_to_decode(
            DistributedMessage(blocks, universe), hybrid_scheme(5),
            digest_bits=8, mode="hash", seed=3,
        )
        assert hash_n < frag_n

    def test_auto_mode_selection(self):
        wide = DistributedMessage((1 << 30,))
        assert PathEncoder(wide, baseline_scheme(), 8).mode == "fragment"
        small = DistributedMessage((3,))
        assert PathEncoder(small, baseline_scheme(), 8).mode == "raw"
        with_uni = DistributedMessage((3,), universe=(3, 4))
        assert PathEncoder(with_uni, baseline_scheme(), 8).mode == "hash"


class TestLNC:
    def test_roundtrip(self):
        msg = DistributedMessage(tuple((i * 91) % 251 for i in range(20)))
        enc = LNCEncoder(msg, seed=1)
        dec = LNCDecoder(20, seed=1)
        pid = 0
        while not dec.is_complete:
            pid += 1
            dec.observe(pid, enc.encode(pid))
        assert dec.path() == list(msg.blocks)
        # LNC should decode in ~ k + log2 k packets.
        assert pid <= 20 + 15

    def test_rank_monotone(self):
        msg = DistributedMessage(tuple(range(10)))
        enc = LNCEncoder(msg)
        dec = LNCDecoder(10)
        ranks = []
        for pid in range(1, 30):
            dec.observe(pid, enc.encode(pid))
            ranks.append(dec.rank)
        assert ranks == sorted(ranks)

    def test_incomplete_raises(self):
        with pytest.raises(DecodingError):
            LNCDecoder(5).path()

    @given(st.integers(2, 40))
    @settings(max_examples=15, deadline=None)
    def test_lnc_property_roundtrip(self, k):
        msg = DistributedMessage(tuple((i * 7 + 1) % 64 for i in range(k)))
        enc = LNCEncoder(msg, seed=k)
        dec = LNCDecoder(k, seed=k)
        for pid in range(1, 40 * k + 200):
            dec.observe(pid, enc.encode(pid))
            if dec.is_complete:
                break
        assert dec.path() == list(msg.blocks)


class TestPropertyRoundtrips:
    @given(
        st.integers(1, 12),
        st.sampled_from(["baseline", "hybrid", "multilayer"]),
        st.integers(0, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_raw_roundtrip_property(self, k, scheme_name, seed):
        factories = {
            "baseline": baseline_scheme,
            "hybrid": lambda: hybrid_scheme(max(2, k)),
            "multilayer": lambda: multilayer_scheme(max(2, k)),
        }
        blocks = tuple((i * 13 + seed) % 256 for i in range(k))
        msg = DistributedMessage(blocks)
        path, _ = decode_roundtrip(
            msg, factories[scheme_name](), digest_bits=8, seed=seed, mode="raw"
        )
        assert path == list(blocks)

    @given(st.integers(2, 8), st.integers(1, 8), st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_hash_roundtrip_property(self, k, bits, seed):
        universe = tuple(range(7000, 7000 + 50))
        blocks = tuple(7000 + (i * 11 + seed) % 50 for i in range(k))
        # Hash mode assumes distinct switch IDs along the path.
        if len(set(blocks)) != len(blocks):
            blocks = tuple(7000 + ((i * 17 + seed) % 50 + i) % 50 for i in range(k))
            if len(set(blocks)) != len(blocks):
                return
        msg = DistributedMessage(blocks, universe)
        path, _ = decode_roundtrip(
            msg, hybrid_scheme(k), digest_bits=bits, seed=seed
        )
        assert path == list(blocks)

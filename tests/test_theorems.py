"""Statistical validation of the paper's theorems against simulation.

Each test runs the actual PINT pipeline at the sample sizes the
theorems prescribe and checks the promised guarantee holds (with the
5% failure budget baked into our constants, validated loosely).
"""

import random

import pytest

from repro.analysis import (
    theorem1_packets,
    theorem1_space,
    theorem2_packets,
    theorem3_packets,
)
from repro.apps import FrequentValueRuntime
from repro.apps.latency import simulate_latency_estimation
from repro.coding import (
    DistributedMessage,
    multilayer_scheme,
    packet_count_distribution,
)
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    Query,
)
from repro.core.plan import ExecutionPlan, PlanEntry
from repro.sketch import rank_error


class TestTheorem1Quantiles:
    """O(k/eps^2) packets -> (phi +- eps)-quantile per hop."""

    def test_rank_error_within_eps(self):
        k, eps, phi = 4, 0.15, 0.5
        packets = int(theorem1_packets(k, eps))
        rng = random.Random(0)
        streams = [
            [rng.expovariate(1.0 / (2e-5 * (h + 1))) for _ in range(packets)]
            for h in range(k)
        ]
        out = simulate_latency_estimation(
            streams, bits=12, num_packets=packets, phi=phi
        )
        failures = 0
        for hop, (est, truth) in out.items():
            err = rank_error(streams[hop - 1][:packets], est, phi)
            if err > eps:
                failures += 1
        # Allow one hop to exceed (the bound holds w.h.p., not surely).
        assert failures <= 1

    def test_space_bound_formula(self):
        assert theorem1_space(8, 0.1) == pytest.approx(80.0)


class TestTheorem2FrequentValues:
    """O(k/eps^2) packets -> theta-frequent values per hop."""

    def test_heavy_value_found_no_light_value(self):
        k, eps, theta = 3, 0.15, 0.4
        packets = int(theorem2_packets(k, eps))
        query = Query("freq", MetadataType.EGRESS_PORT,
                      AggregationType.DYNAMIC_PER_FLOW, 8, space_budget=120)
        plan = ExecutionPlan([PlanEntry((query,), 1.0)], 8)
        fw = PINTFramework(plan)
        rt = FrequentValueRuntime(query)
        fw.register(rt)
        rng = random.Random(1)
        # Hop 2 emits value 7 sixty percent of the time; others uniform.
        path = [100, 101, 102]
        for pid in range(1, packets + 1):
            hops = []
            for i, sid in enumerate(path):
                if i == 1 and rng.random() < 0.6:
                    port = 7
                else:
                    port = rng.randint(20, 60)
                hops.append(HopView(switch_id=sid, hop_number=i + 1,
                                    egress_port=port))
            fw.process_packet(PacketContext(pid, 1, k), hops)
        heavy = dict(rt.heavy_values(1, 2, theta))
        assert 7 in heavy
        assert heavy[7] == pytest.approx(0.6, abs=0.15)
        # No uniform value (each < 3% of the stream) may be reported
        # above theta.
        for value, freq in heavy.items():
            if value != 7:
                assert freq < theta + eps

    def test_samples_cover_all_hops(self):
        query = Query("freq", MetadataType.EGRESS_PORT,
                      AggregationType.DYNAMIC_PER_FLOW, 8)
        plan = ExecutionPlan([PlanEntry((query,), 1.0)], 8)
        fw = PINTFramework(plan)
        rt = FrequentValueRuntime(query)
        fw.register(rt)
        path = [1, 2, 3, 4, 5]
        for pid in range(1, 1001):
            hops = [HopView(switch_id=s, hop_number=i + 1, egress_port=9)
                    for i, s in enumerate(path)]
            fw.process_packet(PacketContext(pid, 1, 5), hops)
        for hop in range(1, 6):
            assert rt.samples_at(1, hop) > 100


class TestTheorem3StaticDecoding:
    """k log log* k (1 + o(1)) packets decode a k-block message."""

    @pytest.mark.parametrize("k", [10, 25, 50])
    def test_multilayer_within_bound(self, k):
        msg = DistributedMessage(tuple(range(k)))
        stats = packet_count_distribution(
            msg, multilayer_scheme(k), trials=20, digest_bits=8, mode="raw"
        )
        bound = theorem3_packets(k)
        # The mean must sit at or below ~1.5x the evaluated bound
        # (the bound's o(1) hides constants; we check the right order).
        assert stats.mean < 1.5 * bound

    def test_bound_grows_subloglinear(self):
        # theorem3(k)/k grows far slower than H_k: the headline gap.
        import math

        ratio_small = theorem3_packets(10) / 10
        ratio_big = theorem3_packets(10_000) / 10_000
        assert ratio_big - ratio_small < 1.0
        assert math.log(10_000) - math.log(10) > 5 * (ratio_big - ratio_small)

"""Tests for topologies and path queries."""

import random

import pytest

from repro.exceptions import TopologyError
from repro.net import (
    Topology,
    fat_tree,
    kentucky_datalink,
    linear_topology,
    synthetic_isp,
    us_carrier,
)


class TestFatTree:
    def test_k4_counts(self):
        topo = fat_tree(4)
        # (k/2)^2 cores + k*(k/2 agg + k/2 edge) = 4 + 16 = 20 switches.
        assert topo.num_switches == 20
        # k^3/4 hosts.
        assert len(topo.hosts) == 16

    def test_k8_counts(self):
        topo = fat_tree(8)
        assert topo.num_switches == 16 + 64
        assert len(topo.hosts) == 128

    def test_path_lengths(self):
        topo = fat_tree(4)
        hosts = topo.hosts
        # Same-edge pair: 1 switch; inter-pod: 5 switches.
        same_edge = topo.switch_path(hosts[0], hosts[1])
        assert len(same_edge) == 1
        inter_pod = topo.switch_path(hosts[0], hosts[-1])
        assert len(inter_pod) == 5

    def test_switch_diameter_5(self):
        # Edge-to-edge across pods: 5 switch hops -> diameter 4 edges.
        assert fat_tree(4).diameter() == 4

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_ecmp_multipath_exists(self):
        topo = fat_tree(4)
        hosts = topo.hosts
        paths = topo.ecmp_paths(hosts[0], hosts[-1])
        assert len(paths) > 1
        lengths = {len(p) for p in paths}
        assert len(lengths) == 1  # equal cost


class TestISP:
    def test_kentucky_parameters(self):
        topo = kentucky_datalink()
        assert topo.num_switches == 753
        assert 59 <= topo.diameter() <= 61

    def test_us_carrier_parameters(self):
        topo = us_carrier()
        assert topo.num_switches == 157
        assert 36 <= topo.diameter() <= 38

    def test_pair_at_distance(self):
        topo = us_carrier()
        for hops in (4, 12, 24, 36):
            src, dst = topo.pair_at_distance(hops, random.Random(1))
            assert len(topo.switch_path(src, dst)) == hops

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            synthetic_isp(5, 10)
        with pytest.raises(TopologyError):
            synthetic_isp(10, 0)

    def test_universe_is_switch_ids(self):
        topo = synthetic_isp(30, 10)
        uni = topo.switch_universe()
        assert len(uni) == 30
        assert len(set(uni)) == 30


class TestLinearAndBasics:
    def test_linear(self):
        topo = linear_topology(7)
        assert topo.diameter() == 6
        assert topo.switch_path(0, 6) == [0, 1, 2, 3, 4, 5, 6]

    def test_no_path_raises(self):
        import networkx as nx
        from repro.net.topology import KIND, SWITCH

        g = nx.Graph()
        g.add_node(0, **{KIND: SWITCH})
        g.add_node(1, **{KIND: SWITCH})
        topo = Topology(g)
        with pytest.raises(TopologyError):
            topo.shortest_path(0, 1)

    def test_unknown_node_raises(self):
        topo = linear_topology(3)
        with pytest.raises(TopologyError):
            topo.shortest_path(0, 99)

    def test_random_host_pair(self):
        topo = fat_tree(4)
        a, b = topo.random_host_pair(random.Random(0))
        assert a != b
        assert a in topo.hosts and b in topo.hosts

    def test_host_pair_requires_hosts(self):
        topo = linear_topology(4)
        with pytest.raises(TopologyError):
            topo.random_host_pair(random.Random(0))

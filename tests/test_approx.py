"""Tests for value approximation (paper §4.3, Appendices B/C)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import (
    AdditiveCompressor,
    FixedPoint,
    LogExpTables,
    MorrisCounter,
    MultiplicativeCompressor,
    delta_for_bits,
    epsilon_for_bits,
    morris_bits_bound,
)
from repro.hashing import GlobalHash


class TestMultiplicative:
    def test_roundtrip_error_bound(self):
        comp = MultiplicativeCompressor(epsilon=0.01)
        for v in [1.0, 3.7, 100.0, 1e6, 4.2e9]:
            assert comp.relative_error(v) <= 0.011

    @given(st.floats(min_value=1.0, max_value=1e12))
    @settings(max_examples=200)
    def test_error_bound_property(self, v):
        comp = MultiplicativeCompressor(epsilon=0.05)
        # One eps-step grid: error bounded by (1+eps)^1 - 1 plus rounding.
        assert comp.relative_error(v) <= 0.051

    def test_paper_16bit_example(self):
        # §4.3: eps = 0.0025 compresses 32-bit values into 16 bits.
        comp = MultiplicativeCompressor(epsilon=0.0025, bits=16)
        assert comp.encode(2**32 - 1) < 2**16

    def test_paper_8bit_hpcc_example(self):
        # §4.3 example #3: 8 bits support eps = 0.025 for utilisation.
        comp = MultiplicativeCompressor(epsilon=0.025, bits=8, max_value=2**17)
        assert comp.encode(2**17) < 2**8

    def test_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            MultiplicativeCompressor(epsilon=0.0001, bits=8)

    def test_monotone(self):
        comp = MultiplicativeCompressor(epsilon=0.02)
        codes = [comp.encode(v) for v in [1, 10, 100, 1000, 10000]]
        assert codes == sorted(codes)

    def test_small_values_to_zero(self):
        comp = MultiplicativeCompressor(epsilon=0.1)
        assert comp.encode(0.0) == 0
        assert comp.encode(0.5) == 0

    def test_negative_rejected(self):
        comp = MultiplicativeCompressor(epsilon=0.1)
        with pytest.raises(ValueError):
            comp.encode(-1.0)

    def test_randomized_rounding_unbiased(self):
        # [.]_R: E[code] equals the exact log, eliminating systematic error.
        comp = MultiplicativeCompressor(epsilon=0.05)
        grid = GlobalHash(1, "rr")
        value = 500.0
        exact = math.log(value) / math.log(comp.base)
        codes = [comp.encode_randomized(value, grid, pid) for pid in range(20000)]
        assert abs(sum(codes) / len(codes) - exact) < 0.02

    def test_randomized_rounding_deterministic_per_key(self):
        comp = MultiplicativeCompressor(epsilon=0.05)
        grid = GlobalHash(1, "rr")
        assert comp.encode_randomized(77.7, grid, 5) == comp.encode_randomized(
            77.7, grid, 5
        )

    def test_epsilon_for_bits(self):
        eps = epsilon_for_bits(16)
        comp = MultiplicativeCompressor(epsilon=eps * 1.001, bits=16)
        assert comp.encode(2**32 - 1) < 2**16

    @given(st.lists(st.floats(min_value=0.0, max_value=1e10), min_size=1,
                    max_size=40))
    @settings(max_examples=50)
    def test_encode_array_matches_scalar(self, values):
        comp = MultiplicativeCompressor(epsilon=0.025)
        arr = comp.encode_array(np.asarray(values))
        assert arr.tolist() == [comp.encode(v) for v in values]

    def test_encode_array_rejects_negative(self):
        comp = MultiplicativeCompressor(epsilon=0.1)
        with pytest.raises(ValueError):
            comp.encode_array(np.asarray([1.0, -2.0]))
        with pytest.raises(ValueError):
            comp.encode_randomized_array(
                np.asarray([-1.0]), np.asarray([0.5])
            )

    @given(st.lists(st.floats(min_value=0.0, max_value=1e10), min_size=1,
                    max_size=40), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_encode_randomized_array_matches_scalar(self, values, base):
        # Feeding the vectorised path the scalar path's own keyed coins
        # must reproduce its codes lane-for-lane.
        comp = MultiplicativeCompressor(epsilon=0.025)
        grid = GlobalHash(3, "rr")
        pids = np.arange(base, base + len(values), dtype=np.int64)
        coins = grid.uniform_lanes(pids, 7)
        arr = comp.encode_randomized_array(np.asarray(values), coins)
        expected = [
            comp.encode_randomized(v, grid, int(pid), 7)
            for v, pid in zip(values, pids)
        ]
        assert arr.tolist() == expected


class TestAdditive:
    @given(st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=200)
    def test_error_at_most_delta(self, v):
        comp = AdditiveCompressor(delta=50.0)
        assert comp.absolute_error(v) <= 50.0 + 1e-6

    def test_roundtrip_grid_points(self):
        comp = AdditiveCompressor(delta=2.0)
        assert comp.decode(comp.encode(8.0)) == 8.0

    def test_delta_for_bits(self):
        delta = delta_for_bits(8, 1000.0)
        comp = AdditiveCompressor(delta=delta, bits=8, max_value=1000.0)
        assert comp.encode(1000.0) < 2**8

    def test_invalid(self):
        with pytest.raises(ValueError):
            AdditiveCompressor(delta=0.0)
        with pytest.raises(ValueError):
            AdditiveCompressor(delta=1.0).encode(-3.0)


class TestMorris:
    def test_estimate_close_on_average(self):
        estimates = []
        for seed in range(30):
            counter = MorrisCounter(a=0.1, grid=GlobalHash(seed, "m"))
            for _ in range(1000):
                counter.increment()
            estimates.append(counter.estimate())
        mean = sum(estimates) / len(estimates)
        assert 800 < mean < 1200

    def test_exponent_is_small(self):
        counter = MorrisCounter(a=1.0, grid=GlobalHash(0, "m"))
        for _ in range(10000):
            counter.increment()
        # log2-ish growth: exponent stays near log2(n).
        assert counter.exponent < 40

    def test_bits_needed(self):
        counter = MorrisCounter(a=1.0)
        assert counter.bits_needed(2**20) <= 6

    def test_bound_formula(self):
        assert morris_bits_bound(0.1, 1, 32) < 16


class TestFixedPoint:
    def test_roundtrip_resolution(self):
        fp = FixedPoint(scale=2.0, m=16)
        for v in [0.0, 0.5, 1.0, 1.19, 1.999]:
            assert abs(fp.decode(fp.encode(v)) - v) <= fp.resolution

    def test_paper_example(self):
        # Appendix C: range [0,2], m=16, code 39131 represents ~1.19.
        fp = FixedPoint(scale=2.0, m=16)
        assert abs(fp.decode(39131) - 1.194) < 0.01

    def test_clamping(self):
        fp = FixedPoint(scale=1.0, m=8)
        assert fp.encode(5.0) == 255
        assert fp.encode(-1.0) == 0

    def test_bad_code(self):
        fp = FixedPoint(scale=1.0, m=4)
        with pytest.raises(ValueError):
            fp.decode(16)


class TestLogExpTables:
    def test_log2_accuracy(self):
        tables = LogExpTables(q=8)
        for x in [3, 100, 12345, 2**20 + 17, 2**40 + 999]:
            assert abs(tables.log2(x) - math.log2(x)) < 0.01

    def test_exp2_accuracy(self):
        tables = LogExpTables(q=8)
        for y in [0.1, 1.5, 7.25, 20.9]:
            assert abs(tables.exp2(y) / (2**y) - 1.0) < 0.01

    def test_multiply_within_error(self):
        tables = LogExpTables(q=8)
        for x, y in [(7, 9), (123, 456), (10000, 3)]:
            rel = abs(tables.multiply(x, y) / (x * y) - 1.0)
            assert rel < 3 * tables.max_relative_error()

    def test_divide_within_error(self):
        tables = LogExpTables(q=8)
        for x, y in [(100, 7), (5, 8), (999999, 1234)]:
            rel = abs(tables.divide(x, y) / (x / y) - 1.0)
            assert rel < 3 * tables.max_relative_error()

    def test_zero_cases(self):
        tables = LogExpTables(q=8)
        assert tables.multiply(0, 5) == 0.0
        assert tables.divide(0, 5) == 0.0
        with pytest.raises(ValueError):
            tables.log2(0)
        with pytest.raises(ValueError):
            tables.divide(1, 0)

"""End-to-end integration tests: the paper's §6.4 combined scenario.

Three concurrent queries share a 16-bit budget over a real topology;
every layer of the stack is exercised together: QueryEngine -> plan ->
framework -> per-hop encoding -> sink -> per-query inference.
"""

import random

import pytest

from repro.apps import (
    CongestionRuntime,
    LatencyRuntime,
    PathTracingRuntime,
)
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    Query,
    QueryEngine,
)
from repro.net import fat_tree, us_carrier
from repro.sketch import exact_quantile, relative_value_error


@pytest.fixture(scope="module")
def combined():
    """The combined framework after 1200 packets of one flow."""
    topo = fat_tree(4)
    path_q = Query("path", MetadataType.SWITCH_ID,
                   AggregationType.STATIC_PER_FLOW, 8, frequency=1.0)
    lat_q = Query("lat", MetadataType.HOP_LATENCY,
                  AggregationType.DYNAMIC_PER_FLOW, 8, frequency=15 / 16)
    cc_q = Query("cc", MetadataType.EGRESS_TX_UTILIZATION,
                 AggregationType.PER_PACKET, 8, frequency=1 / 16)
    plan = QueryEngine(16).compile([path_q, lat_q, cc_q])
    fw = PINTFramework(plan)
    path_rt = PathTracingRuntime(path_q, topo.switch_universe(), d=5)
    lat_rt = LatencyRuntime(lat_q)
    cc_rt = CongestionRuntime(cc_q)
    for rt in (path_rt, lat_rt, cc_rt):
        fw.register(rt)

    rng = random.Random(11)
    path = topo.switch_path(topo.hosts[0], topo.hosts[-1])
    true_lat = {h: [] for h in range(1, len(path) + 1)}
    utils = [0.1, 0.8, 0.4, 0.2, 0.5]
    n = 1200
    for pid in range(1, n + 1):
        hops = []
        for i, sid in enumerate(path):
            lat = rng.expovariate(1.0 / (30e-6 * (i + 1)))
            true_lat[i + 1].append(lat)
            hops.append(HopView(switch_id=sid, hop_number=i + 1,
                                hop_latency=lat,
                                egress_tx_utilization=utils[i]))
        fw.process_packet(PacketContext(pid, flow_id=1, path_len=len(path)),
                          hops)
    return fw, path_rt, lat_rt, cc_rt, path, true_lat, n


class TestCombinedScenario:
    def test_budget_is_two_bytes(self, combined):
        fw = combined[0]
        assert fw.overhead_bytes_per_packet() == 2.0

    def test_path_decoded(self, combined):
        _, path_rt, _, _, path, _, _ = combined
        assert path_rt.flow_path(1) == path

    def test_no_spurious_route_change(self, combined):
        _, path_rt, _, _, _, _, _ = combined
        assert path_rt.route_change_signals(1) == 0

    def test_latency_median_each_hop(self, combined):
        _, _, lat_rt, _, path, true_lat, _ = combined
        for hop in range(1, len(path) + 1):
            truth = exact_quantile(true_lat[hop], 0.5)
            est = lat_rt.quantile(1, hop, 0.5)
            assert relative_value_error(truth, est) < 0.35

    def test_latency_sample_share(self, combined):
        _, _, lat_rt, _, path, _, n = combined
        total = sum(lat_rt.samples_at(1, h) for h in range(1, len(path) + 1))
        # Latency runs on ~15/16 of packets, one sample per packet.
        assert total == pytest.approx(n * 15 / 16, rel=0.08)

    def test_congestion_bottleneck(self, combined):
        _, _, _, cc_rt, _, _, n = combined
        assert cc_rt.bottleneck(1) == pytest.approx(0.8, rel=0.12)
        # cc runs on ~1/16 of packets.
        assert cc_rt.feedback_count == pytest.approx(n / 16, rel=0.45)


class TestRouteChangeDetection:
    def test_reroute_signalled_and_recoverable(self):
        topo = us_carrier()
        rng = random.Random(2)
        src, dst = topo.pair_at_distance(8, rng)
        path_a = topo.switch_path(src, dst)
        # A different path of the same length (synthetic reroute):
        # reverse the middle section to change interior switch order.
        path_b = [path_a[0]] + path_a[1:-1][::-1] + [path_a[-1]]
        query = Query("path", MetadataType.SWITCH_ID,
                      AggregationType.STATIC_PER_FLOW, 8, frequency=1.0)
        from repro.core.plan import ExecutionPlan, PlanEntry

        plan = ExecutionPlan([PlanEntry((query,), 1.0)], 8)
        fw = PINTFramework(plan)
        rt = PathTracingRuntime(query, topo.switch_universe(), d=10)
        fw.register(rt)

        def send(path, pids):
            for pid in pids:
                hops = [HopView(switch_id=s, hop_number=i + 1)
                        for i, s in enumerate(path)]
                fw.process_packet(PacketContext(pid, 1, len(path)), hops)

        send(path_a, range(1, 600))
        assert rt.flow_path(1) == path_a
        send(path_b, range(600, 900))
        # The changed interior hops contradict the decoded path.
        assert rt.route_change_signals(1) > 0
        # Operator resets the flow and re-learns the new path.
        rt.reset_flow(1)
        send(path_b, range(900, 1900))
        assert rt.flow_path(1) == path_b


class TestDESIntegration:
    def test_pint_hpcc_full_stack(self):
        """DES + PINT telemetry + HPCC: digests flow sender<->receiver."""
        from repro.net import fat_tree as ft
        from repro.sim import Flow, Network, PINTTelemetry, Simulator

        topo = ft(4)
        probe = Network(topo, Simulator(), link_rate_bps=1e8)
        rtt = probe.base_rtt(topo.hosts[0], topo.hosts[-1])
        net = Network(topo, Simulator(), link_rate_bps=1e8,
                      telemetry=PINTTelemetry(base_rtt=rtt, frequency=1.0))
        h = topo.hosts
        flows = [
            Flow(net, i + 1, h[i], h[8 + i], 150_000, 0.002 * i,
                 transport="hpcc")
            for i in range(4)
        ]
        net.sim.run(until=10.0)
        for flow in flows:
            assert flow.fct is not None
            assert flow.receiver.expected == flow.num_packets
            assert flow.sender.last_u > 0.0

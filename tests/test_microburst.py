"""Tests for the microburst-detection use case (Table 2)."""

import random

import pytest

from repro.apps import MicroburstRuntime
from repro.core import (
    AggregationType,
    HopView,
    MetadataType,
    PacketContext,
    PINTFramework,
    Query,
)
from repro.core.plan import ExecutionPlan, PlanEntry


def _runtime(bits=8, **kwargs):
    query = Query("burst", MetadataType.QUEUE_OCCUPANCY,
                  AggregationType.DYNAMIC_PER_FLOW, bits)
    rt = MicroburstRuntime(query, **kwargs)
    plan = ExecutionPlan([PlanEntry((query,), 1.0)], bits)
    fw = PINTFramework(plan)
    fw.register(rt)
    return fw, rt


def _send(fw, path, pids, occupancy_fn):
    for pid in pids:
        hops = [
            HopView(switch_id=s, hop_number=i + 1,
                    queue_occupancy=occupancy_fn(i, pid))
            for i, s in enumerate(path)
        ]
        fw.process_packet(PacketContext(pid, 1, len(path)), hops)


class TestMicroburst:
    PATH = [10, 11, 12, 13]

    def test_quiet_network_no_bursts(self):
        fw, rt = _runtime()
        rng = random.Random(0)
        _send(fw, self.PATH, range(1, 2001),
              lambda i, pid: rng.randint(1000, 3000))
        assert rt.bursting_hops(1, len(self.PATH)) == []

    def test_burst_detected_at_right_hop(self):
        fw, rt = _runtime(window=64)
        rng = random.Random(1)
        # Long quiet phase...
        _send(fw, self.PATH, range(1, 3001),
              lambda i, pid: rng.randint(1000, 3000))
        # ...then hop 3's queue explodes.
        _send(fw, self.PATH, range(3001, 4001),
              lambda i, pid: 500_000 if i == 2 else rng.randint(1000, 3000))
        bursting = rt.bursting_hops(1, len(self.PATH))
        assert 3 in bursting
        assert 1 not in bursting and 4 not in bursting

    def test_baseline_tracks_mean(self):
        fw, rt = _runtime()
        _send(fw, self.PATH, range(1, 4001), lambda i, pid: 50_000)
        for hop in range(1, 5):
            base = rt.baseline_occupancy(1, hop)
            assert base == pytest.approx(50_000, rel=0.1)

    def test_compression_noise_does_not_trigger(self):
        # Coarse 4-bit codec: quantisation alone must not raise alarms.
        fw, rt = _runtime(bits=4)
        _send(fw, self.PATH, range(1, 3001), lambda i, pid: 0)
        assert rt.bursting_hops(1, len(self.PATH)) == []

    def test_window_peak_decays_after_burst(self):
        fw, rt = _runtime(window=16)
        _send(fw, self.PATH, range(1, 501), lambda i, pid: 400_000)
        peak_during = rt.window_peak(1, 1)
        _send(fw, self.PATH, range(501, 3501), lambda i, pid: 1000)
        peak_after = rt.window_peak(1, 1)
        assert peak_after < peak_during

    def test_samples_attributed_to_all_hops(self):
        fw, rt = _runtime()
        _send(fw, self.PATH, range(1, 2001), lambda i, pid: 100)
        for hop in range(1, 5):
            assert rt.baseline_occupancy(1, hop) >= 0
            assert (1, hop) in rt._recent

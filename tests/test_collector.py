"""Tests for the sink-side streaming collector (repro.collector)."""

import numpy as np
import pytest

from repro.coding import (
    DistributedMessage,
    PathEncoder,
    make_decoder,
    multilayer_scheme,
    pack_reps,
)
from repro.collector import (
    Collector,
    CongestionDigestConsumer,
    FlowTable,
    ShardRouter,
    congestion_consumer_factory,
    latency_consumer_factory,
    normalize_batch,
    path_consumer_factory,
)
from repro.net import fat_tree
from repro.sim.experiment import run_hpcc_experiment
from repro.sim.workload import hadoop_cdf


_pack = pack_reps


class TestShardRouting:
    def test_same_flow_same_shard(self):
        router = ShardRouter(16, seed=5)
        for flow_id in range(1, 500):
            first = router.shard_of(flow_id)
            assert all(router.shard_of(flow_id) == first for _ in range(3))
            assert 0 <= first < 16

    def test_scalar_matches_vectorised(self):
        router = ShardRouter(8, seed=1)
        fids = np.arange(1, 4000, dtype=np.int64)
        arr = router.shard_of_array(fids)
        assert all(
            router.shard_of(int(f)) == int(s) for f, s in zip(fids, arr)
        )

    def test_spread_across_shards(self):
        router = ShardRouter(8, seed=0)
        counts = np.bincount(
            router.shard_of_array(np.arange(8000)), minlength=8
        )
        assert counts.min() > 0.5 * 1000  # roughly balanced

    def test_collector_places_flow_once(self):
        col = Collector(congestion_consumer_factory(), num_shards=8, seed=2)
        for i in range(200):
            col.ingest(42, i, 5, i % 256)
        snap = col.snapshot()
        assert snap.flows == 1
        assert snap.records == 200
        assert snap.max_shard_flows == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestFlowTable:
    def test_lru_eviction_order(self):
        table = FlowTable(lambda fid: CongestionDigestConsumer(), max_flows=3)
        for fid in (1, 2, 3):
            table.touch(fid, now=float(fid))
        table.touch(1, now=4.0)       # 2 is now the least recent
        table.touch(4, now=5.0)       # evicts 2
        assert 2 not in table and {1, 3, 4} <= set(f for f, _ in table.items())
        assert table.lru_evictions == 1

    def test_evicted_flow_reinitializes_cleanly(self):
        table = FlowTable(lambda fid: CongestionDigestConsumer(), max_flows=1)
        first = table.touch(7, now=0.0)
        first.consumer.consume(1, 5, 200)
        table.touch(8, now=1.0)       # evicts 7
        again = table.touch(7, now=2.0)
        assert again.generation > first.generation
        assert again.consumer is not first.consumer
        assert again.consumer.records == 0
        assert again.consumer.max_code == -1

    def test_ttl_expiry(self):
        table = FlowTable(lambda fid: CongestionDigestConsumer(), ttl=10.0)
        table.touch(1, now=0.0)
        table.touch(2, now=8.0)
        assert table.expire(now=15.0) == 1    # flow 1 idle > ttl
        assert 1 not in table and 2 in table
        assert table.ttl_evictions == 1

    def test_ttl_via_collector(self):
        col = Collector(congestion_consumer_factory(), num_shards=2, ttl=5.0)
        col.ingest(1, 1, 3, 10, now=0.0)
        col.ingest(2, 2, 3, 10, now=4.0)
        evicted = col.expire(now=20.0)
        assert evicted == 2
        assert len(col) == 0
        assert col.flow(1) is None

    def test_clock_modes_cannot_mix(self):
        col = Collector(congestion_consumer_factory(), num_shards=2, ttl=5.0)
        col.ingest(1, 1, 3, 10, now=1.0)
        with pytest.raises(ValueError):
            col.ingest(1, 2, 3, 10)            # free-running after timed
        with pytest.raises(ValueError):
            col.ingest_batch([1], [3], [3], [1])
        free = Collector(congestion_consumer_factory(), num_shards=2)
        free.ingest(1, 1, 3, 10)
        with pytest.raises(ValueError):
            free.ingest(1, 2, 3, 10, now=2.0)  # timed after free-running
        with pytest.raises(ValueError):
            free.expire(now=2.0)               # wall-clock sweep, too
        assert free.expire() == 0              # clock-native sweep is fine

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowTable(lambda fid: CongestionDigestConsumer(), max_flows=0)
        with pytest.raises(ValueError):
            FlowTable(lambda fid: CongestionDigestConsumer(), ttl=0.0)


class TestBatchedIngest:
    def test_batch_matches_scalar_state(self):
        rng = np.random.default_rng(3)
        n = 4000
        fids = rng.integers(1, 100, n)
        pids = np.arange(1, n + 1)
        hops = np.full(n, 5)
        digs = rng.integers(0, 256, n)
        scalar = Collector(congestion_consumer_factory(), num_shards=4, seed=7)
        batched = Collector(congestion_consumer_factory(), num_shards=4, seed=7)
        for i in range(n):
            scalar.ingest(int(fids[i]), int(pids[i]), int(hops[i]), int(digs[i]))
        batched.ingest_batch(fids, pids, hops, digs)
        for fid in np.unique(fids):
            a, b = scalar.flow(int(fid)), batched.flow(int(fid))
            assert a.max_code == b.max_code
            assert a.last_code == b.last_code
            assert a.records == b.records
        assert scalar.snapshot().records == batched.snapshot().records == n
        assert scalar.snapshot().flows == batched.snapshot().flows

    def test_batch_accepts_plain_lists(self):
        col = Collector(congestion_consumer_factory(), num_shards=1)
        assert col.ingest_batch([1, 1, 2], [1, 2, 3], [4, 4, 4], [9, 3, 5]) == 3
        assert col.flow(1).max_code == 9
        assert col.flow(2).max_code == 5

    def test_empty_batch(self):
        col = Collector(congestion_consumer_factory(), num_shards=2)
        assert col.ingest_batch([], [], [], []) == 0
        assert len(col) == 0

    def test_ragged_batch_rejected(self):
        with pytest.raises(ValueError):
            normalize_batch([1, 2], [1], [1, 1], [0, 0])

    def test_2d_flow_column_rejected(self):
        with pytest.raises(ValueError):
            normalize_batch([[1, 2], [3, 4], [5, 6]], [1, 2, 3],
                            [1, 1, 1], [7, 8, 9])

    def test_single_shard_fast_path(self):
        col = Collector(congestion_consumer_factory(), num_shards=1)
        col.ingest_batch([3, 4, 3], [1, 2, 3], [2, 2, 2], [7, 1, 2])
        assert col.flow(3).records == 2
        assert col.flow(4).records == 1

    def test_batches_counted_per_call_not_per_group(self):
        col = Collector(congestion_consumer_factory(), num_shards=2, seed=0)
        n = 200  # 100 distinct flows spread over both shards
        col.ingest_batch(
            np.arange(n) % 100, np.arange(n), np.full(n, 3), np.arange(n)
        )
        snap = col.snapshot()
        # One ingest_batch call bumps each touched shard once, however
        # many flow groups it fans out into.
        assert sum(s.batches for s in snap.shards) <= col.num_shards
        assert snap.records == n


class TestPathCollector:
    def test_decodes_same_path_as_harness(self):
        """Acceptance: collector-backed decode == PathTracer's decode.

        Same topology path, scheme, digest layout and seed as the
        ``PathTracer`` harness uses internally (PathEncoder +
        make_decoder): the collector must recover the identical switch
        path, and in the identical number of packets.
        """
        topo = fat_tree(4)
        src, dst = topo.hosts[0], topo.hosts[-1]
        path = topo.switch_path(src, dst)
        universe = topo.switch_universe()
        seed, bits, hashes = 42, 8, 2
        scheme = multilayer_scheme(len(path))
        message = DistributedMessage.from_path(path, universe)
        encoder = PathEncoder(message, scheme, bits, "hash", hashes, seed)
        reference = make_decoder(encoder)

        col = Collector(
            path_consumer_factory(
                universe, digest_bits=bits, num_hashes=hashes,
                seed=seed, scheme=scheme,
            ),
            num_shards=4,
            seed=seed,
        )
        flow_id = 11
        harness_done = None
        collector_done = None
        for pid in range(1, 100_000):
            reps = encoder.encode(pid)
            if harness_done is None:
                reference.observe(pid, reps)
                if reference.is_complete:
                    harness_done = pid
            if collector_done is None:
                col.ingest(flow_id, pid, len(path), _pack(reps, bits))
                if col.flow(flow_id).is_complete:
                    collector_done = pid
            if harness_done and collector_done:
                break
        assert harness_done == collector_done
        assert reference.path() == path
        assert col.result(flow_id) == path

    def test_many_flows_batched(self):
        topo = fat_tree(4)
        universe = topo.switch_universe()
        rng = np.random.default_rng(0)
        flows = {}
        for fid in range(1, 9):
            src, dst = rng.choice(topo.hosts, 2, replace=False)
            flows[fid] = topo.switch_path(int(src), int(dst))
        seed, bits = 5, 8
        encoders = {
            fid: PathEncoder(
                DistributedMessage.from_path(p, universe),
                multilayer_scheme(len(p)), bits, "hash", 1, seed,
            )
            for fid, p in flows.items() if len(p) >= 1
        }
        # Default factory: the scheme adapts per flow to the observed
        # hop count, matching each encoder's multilayer_scheme(len(p)).
        col = Collector(
            path_consumer_factory(universe, digest_bits=bits, seed=seed),
            num_shards=4,
        )
        pid = 0
        for _round in range(400):
            fids, pids, hops, digs = [], [], [], []
            for fid, enc in encoders.items():
                pid += 1
                fids.append(fid)
                pids.append(pid)
                hops.append(len(flows[fid]))
                digs.append(_pack(enc.encode(pid), bits))
            col.ingest_batch(fids, pids, hops, digs)
            if all(col.flow(f).is_complete for f in encoders):
                break
        for fid in encoders:
            assert col.result(fid) == flows[fid]

    def test_decode_error_resets_consumer(self):
        """A digest stream that contradicts itself resets, not wedges."""
        topo = fat_tree(4)
        universe = topo.switch_universe()
        consumer = path_consumer_factory(universe, digest_bits=8, seed=1, d=4)(1)
        # Feed garbage digests long enough to force a contradiction.
        for pid in range(1, 400):
            consumer.consume(pid, 4, pid % 251)
            if consumer.decode_errors:
                break
        assert consumer.decode_errors >= 1


class TestLatencyCollector:
    def test_quantiles_track_truth(self):
        from repro.apps.latency import LatencyCompressor
        from repro.hashing import GlobalHash, reservoir_carrier

        seed, bits, k = 3, 12, 4
        comp = LatencyCompressor(bits, seed=seed)
        g = GlobalHash(seed, "latency-reservoir")
        rng = np.random.default_rng(1)
        truth = {hop: [] for hop in range(1, k + 1)}
        col = Collector(
            latency_consumer_factory(bits=bits, seed=seed), num_shards=2
        )
        for pid in range(1, 4001):
            lat = {hop: float(rng.uniform(1e-5, 1e-3) * hop)
                   for hop in range(1, k + 1)}
            carrier = reservoir_carrier(g, pid, k)
            truth[carrier].append(lat[carrier])
            col.ingest(1, pid, k, comp.encode(lat[carrier], pid, carrier))
        consumer = col.flow(1)
        assert consumer.is_complete
        for hop in range(1, k + 1):
            assert consumer.samples_at(hop) == len(truth[hop])
            est = consumer.quantile(hop, 0.5)
            exact = float(np.quantile(truth[hop], 0.5))
            assert est == pytest.approx(exact, rel=0.25)

    def test_sketch_bounds_state(self):
        col_raw = Collector(latency_consumer_factory(bits=8), num_shards=1)
        col_sk = Collector(
            latency_consumer_factory(bits=8, sketch_size=64), num_shards=1
        )
        for pid in range(1, 3001):
            col_raw.ingest(1, pid, 5, pid % 200)
            col_sk.ingest(1, pid, 5, pid % 200)
        assert (
            col_sk.snapshot().state_bytes < col_raw.snapshot().state_bytes
        )


class TestSnapshot:
    def test_counters_and_dict(self):
        col = Collector(
            congestion_consumer_factory(), num_shards=4,
            max_flows_per_shard=8, seed=1,
        )
        rng = np.random.default_rng(2)
        n = 2000
        col.ingest_batch(
            rng.integers(1, 200, n), np.arange(n), np.full(n, 4),
            rng.integers(0, 256, n),
        )
        snap = col.snapshot()
        assert snap.records == n
        assert snap.flows == len(col) <= 4 * 8
        assert snap.evictions > 0            # 199 flows into 32 slots
        assert snap.completion_rate == 1.0   # congestion: any record completes
        assert snap.state_bytes > 0
        d = snap.as_dict()
        assert d["records"] == n and len(d["shards"]) == 4

    def test_completion_rate_partial(self):
        topo = fat_tree(4)
        universe = topo.switch_universe()
        col = Collector(
            path_consumer_factory(universe, digest_bits=8, seed=0, d=4),
            num_shards=1,
        )
        col.ingest(1, 1, 4, 0)  # one digest: nowhere near decoded
        snap = col.snapshot()
        assert snap.flows == 1 and snap.completed_flows == 0
        assert snap.completion_rate == 0.0


class TestDESIntegration:
    def test_collector_rejected_for_non_pint_modes(self):
        from repro.sim.experiment import build_telemetry

        col = Collector(congestion_consumer_factory(), num_shards=1)
        for mode in ("int", "none"):
            with pytest.raises(ValueError):
                build_telemetry(mode, collector=col)

    def test_collector_backed_hpcc_run(self):
        col = Collector(
            congestion_consumer_factory(seed=0), num_shards=4, seed=0
        )
        result = run_hpcc_experiment(
            "pint",
            load=0.3,
            cdf=hadoop_cdf(0.05),
            link_rate_bps=50e6,
            duration=0.05,
            max_flows=20,
            seed=0,
            collector=col,
        )
        snap = col.snapshot()
        assert result.flows      # the run itself completed flows
        assert snap.records > 0  # ...and streamed digests while running
        assert snap.flows > 0
        assert snap.taken_at > 0.0  # clock rode the sim time
        for shard in col.shards:
            for fid, entry in shard.table.items():
                u = entry.consumer.bottleneck()
                # Randomised rounding can land one grid step above
                # the codec's max_util anchor (16).
                assert u is not None and 0.0 <= u <= 17.0


class TestShardRouterEdgeIds:
    """The parallel scatter relies on scalar/vector routing agreeing
    on *every* representable flow id, not just small ones."""

    def test_extreme_int64_ids_scalar_matches_vectorised(self):
        router = ShardRouter(16, seed=3)
        edge = np.array([0, 1, 2**62, 2**63 - 1], dtype=np.int64)
        arr = router.shard_of_array(edge)
        assert [router.shard_of(int(v)) for v in edge] == arr.tolist()

    def test_random_uint64_ids_scalar_matches_vectorised(self):
        rng = np.random.default_rng(9)
        fids = rng.integers(0, 2**64, size=2000, dtype=np.uint64)
        router = ShardRouter(8, seed=1)
        arr = router.shard_of_array(fids)
        assert int(arr.min()) >= 0 and int(arr.max()) < 8
        assert all(
            router.shard_of(int(v)) == int(s) for v, s in zip(fids, arr)
        )

    def test_uint64_boundary_ids(self):
        router = ShardRouter(4, seed=2)
        for v in (0, 2**63 - 1, 2**63, 2**64 - 1):
            arr = router.shard_of_array(np.array([v], dtype=np.uint64))
            assert router.shard_of(v) == int(arr[0])


class TestFlowTableTTLBoundaries:
    def test_entry_exactly_ttl_old_is_evicted(self):
        # expire() keeps only entries *strictly* newer than the
        # deadline: last_seen == now - ttl is gone.
        table = FlowTable(lambda fid: CongestionDigestConsumer(), ttl=10.0)
        table.touch(1, now=0.0)
        table.touch(2, now=0.0 + 1e-9)
        assert table.expire(now=10.0) == 1
        assert 1 not in table and 2 in table

    def test_maybe_expire_amortisation_window(self):
        table = FlowTable(lambda fid: CongestionDigestConsumer(), ttl=8.0)
        table.touch(1, now=0.0)
        assert table.maybe_expire(0.0) == 0     # arms the sweep clock
        table.touch(2, now=9.0)
        # 9.0 - 0.0 >= ttl/4, so this sweep runs and catches flow 1
        # (idle 9.0 > ttl 8.0).
        assert table.maybe_expire(9.0) == 1
        # within ttl/4 of the last sweep: no sweep, whatever is due
        assert table.maybe_expire(10.0) == 0


class TestBatchLRUExactRecency:
    """With max_flows set, ingest_batch must be record-faithful: same
    eviction victims, counters and surviving consumer state as a
    record-at-a-time replay of the stream (same clock readings)."""

    @staticmethod
    def _pair(num_shards, max_flows, seed=11):
        make = lambda: Collector(
            congestion_consumer_factory(), num_shards=num_shards,
            max_flows_per_shard=max_flows, seed=seed,
        )
        return make(), make()

    def test_known_divergence_case_now_matches(self):
        # Pre-state [Y, X] (Y least recent), capacity 2, batch
        # [X, A, X]: record order touches X before A arrives, so A
        # evicts Y and the final LRU order is [A, X].  Group-ordered
        # batching used to leave [X, A] and evict X next -- the
        # documented divergence this path removes.
        scalar, batched = self._pair(num_shards=1, max_flows=2)
        for col in (scalar, batched):
            col.ingest(2, 1, 3, 20, now=1.0)   # Y
            col.ingest(1, 2, 3, 10, now=2.0)   # X
        fids, pids, hops, digs = [1, 3, 1], [3, 4, 5], [3, 3, 3], [7, 8, 9]
        for i in range(3):
            scalar.ingest(fids[i], pids[i], hops[i], digs[i], now=3.0)
        batched.ingest_batch(fids, pids, hops, digs, now=3.0)
        for col in (scalar, batched):
            assert col.flow(2) is None          # Y evicted
            assert col.flow(1).max_code == 10   # X kept pre-batch state
            assert col.flow(1).records == 3     # 1 pre-batch + 2 in-batch
        # The next single-flow batch must evict the same victim (A).
        scalar.ingest(4, 6, 3, 1, now=4.0)
        batched.ingest_batch([4], [6], [3], [1], now=4.0)
        for col in (scalar, batched):
            assert col.flow(3) is None and col.flow(1) is not None

    def test_midbatch_evict_and_recreate_drops_early_records(self):
        # Capacity 1, batch [A, B, A]: the scalar replay evicts A's
        # first incarnation before its second record arrives, so the
        # surviving consumer saw only the last record.
        scalar, batched = self._pair(num_shards=1, max_flows=1)
        fids, pids, hops, digs = [1, 2, 1], [1, 2, 3], [3, 3, 3], [10, 20, 3]
        for i in range(3):
            scalar.ingest(fids[i], pids[i], hops[i], digs[i], now=1.0)
        batched.ingest_batch(fids, pids, hops, digs, now=1.0)
        for col in (scalar, batched):
            consumer = col.flow(1)
            assert col.flow(2) is None
            assert consumer.max_code == 3       # 10 died with incarnation 1
            assert consumer.records == 1
            table = col.shards[0].table
            assert table.created == 3
            assert table.lru_evictions == 2

    @pytest.mark.parametrize("num_shards,max_flows", [(1, 3), (4, 2), (4, 5)])
    def test_random_streams_match_scalar_replay(self, num_shards, max_flows):
        rng = np.random.default_rng(num_shards * 31 + max_flows)
        n = 3000
        fids = rng.integers(1, 40, n).tolist()
        pids = list(range(1, n + 1))
        hops = rng.integers(2, 6, n).tolist()
        digs = rng.integers(0, 256, n).tolist()
        scalar, batched = self._pair(num_shards, max_flows)
        batch = 257  # deliberately unaligned batch edges
        now = 0.0
        for lo in range(0, n, batch):
            hi = min(lo + batch, n)
            now += 1.0
            for i in range(lo, hi):
                scalar.ingest(fids[i], pids[i], hops[i], digs[i], now=now)
            batched.ingest_batch(
                fids[lo:hi], pids[lo:hi], hops[lo:hi], digs[lo:hi], now=now
            )
        s_snap, b_snap = scalar.snapshot(), batched.snapshot()
        for s, b in zip(s_snap.shards, b_snap.shards):
            assert s.flows == b.flows
            assert s.records == b.records
            assert s.created == b.created
            assert s.lru_evictions == b.lru_evictions
            assert s.state_bytes == b.state_bytes
        for sh_s, sh_b in zip(scalar.shards, batched.shards):
            keys_s = [f for f, _ in sh_s.table.items()]
            keys_b = [f for f, _ in sh_b.table.items()]
            assert keys_s == keys_b          # identical LRU order
            for fid in keys_s:
                a = sh_s.table.get(fid)
                b = sh_b.table.get(fid)
                assert a.generation == b.generation
                assert a.records == b.records
                assert a.consumer.max_code == b.consumer.max_code
                assert a.consumer.last_code == b.consumer.last_code

    def test_ttl_without_capacity_is_batch_granular(self):
        # Documented fast-path semantics: with ttl set but no
        # max_flows, a flow idle past its TTL whose next record
        # arrives in the same batch is revived with its state intact
        # (a record-at-a-time replay might sweep it first, depending
        # on which record triggers the amortised sweep).
        col = Collector(congestion_consumer_factory(), num_shards=1, ttl=5.0)
        col.ingest_batch([1], [1], [3], [50], now=0.0)
        col.ingest_batch([2, 1], [2, 3], [3, 3], [7, 9], now=10.0)
        assert col.flow(1).max_code == 50
        assert col.shards[0].table.ttl_evictions == 0

    def test_lru_with_ttl_matches_scalar_replay(self):
        rng = np.random.default_rng(4)
        n = 1200
        fids = rng.integers(1, 25, n).tolist()
        make = lambda: Collector(
            congestion_consumer_factory(), num_shards=2,
            max_flows_per_shard=3, ttl=6.0, seed=1,
        )
        scalar, batched = make(), make()
        now = 0.0
        for lo in range(0, n, 100):
            hi = min(lo + 100, n)
            now += 1.0
            for i in range(lo, hi):
                scalar.ingest(fids[i], i + 1, 3, i % 256, now=now)
            batched.ingest_batch(
                fids[lo:hi], list(range(lo + 1, hi + 1)), [3] * (hi - lo),
                [i % 256 for i in range(lo, hi)], now=now,
            )
        s_dict = scalar.snapshot().as_dict()
        b_dict = batched.snapshot().as_dict()
        # `batches` counts ingest_batch calls, which the scalar replay
        # by definition never makes; everything else must agree.
        for d in (s_dict, b_dict):
            for shard in d["shards"]:
                shard.pop("batches")
        assert s_dict == b_dict

"""repro.obs: metrics registry, spans, merge, exposition, watch CLI.

The observability substrate's contract is sharp: instruments are
get-or-create on (name, labels) with kind consistency enforced, the
disabled registry is free, registry dumps merge across processes
bucket-by-bucket, and the dict form round-trips to Prometheus text
exposition byte-for-byte predictably.  Spans and the watch loop take
injectable clocks, so every timing assertion here is exact -- no
sleeps, no tolerances.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import pytest

from repro.collector import Collector, path_consumer_factory
from repro.obs import (
    MetricsHTTPServer,
    MetricsRegistry,
    NULL_REGISTRY,
    RingBuffer,
    StageTimes,
    Watcher,
    log_buckets,
    merge_metrics,
    render_prometheus,
    sparkline,
)
from repro.obs.metrics import DURATION_BUCKETS, SIZE_BUCKETS
from repro.replay import ReplayDriver, build_trace
from repro.service.query import QueryServer


class FakeClock:
    """Deterministic clock: advances only when told."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- buckets ----------------------------------------------------------------

class TestLogBuckets:
    def test_strictly_increasing_and_covering(self):
        b = log_buckets(1e-6, 10.0, per_decade=3)
        assert list(b) == sorted(set(b))
        assert b[0] == pytest.approx(1e-6)
        assert b[-1] == pytest.approx(10.0)

    def test_per_decade_density(self):
        assert len(log_buckets(1.0, 1000.0, per_decade=1)) == 4  # 1,10,100,1k
        assert len(log_buckets(1.0, 100.0, per_decade=3)) == 7

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)

    def test_default_buckets_sane(self):
        assert DURATION_BUCKETS[0] == pytest.approx(1e-6)
        assert DURATION_BUCKETS[-1] == pytest.approx(10.0)
        assert SIZE_BUCKETS[0] == 1.0 and SIZE_BUCKETS[-1] == pytest.approx(1e6)


# -- instruments ------------------------------------------------------------

class TestInstruments:
    def test_counter_monotone(self):
        c = MetricsRegistry().counter("c_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 5

    def test_gauge_goes_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_histogram_buckets_and_moments(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        s = h.sample()
        # Per-bucket internal counts: <=1, <=10, <=100, +Inf.
        assert s["buckets"] == [[1.0, 2], [10.0, 1], [100.0, 1], ["+Inf", 1]]
        assert s["count"] == 5 and s["sum"] == pytest.approx(556.5)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=(2.0, 1.0))

    def test_function_backed_read_at_export(self):
        reg = MetricsRegistry()
        box = {"n": 3}
        reg.counter("fn_total").set_function(lambda: box["n"])
        assert reg.counter("fn_total").value == 3
        box["n"] = 9
        fam = reg.as_dict()["families"]["fn_total"]
        assert fam["samples"][0]["value"] == 9


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help once")
        b = reg.counter("x_total")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_labels_separate_streams(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"sink": "path"})
        b = reg.counter("x_total", labels={"sink": "congestion"})
        assert a is not b
        a.inc(3)
        samples = reg.as_dict()["families"]["x_total"]["samples"]
        assert len(samples) == 2
        by = {s["labels"]["sink"]: s["value"] for s in samples}
        assert by == {"path": 3, "congestion": 0}

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x_total", labels={"other": "labels"})

    def test_as_dict_deterministic_and_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("b_total", labels={"w": "1"}).inc()
        reg.counter("b_total", labels={"w": "0"}).inc(2)
        reg.gauge("a").set(1.5)
        d1, d2 = reg.as_dict(), reg.as_dict()
        assert d1 == d2
        json.dumps(d1, allow_nan=False)
        labels = [s["labels"]["w"]
                  for s in d1["families"]["b_total"]["samples"]]
        assert labels == ["0", "1"]  # sorted by label tuple

    def test_thread_safety_no_lost_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total")

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestSpans:
    def test_span_exact_duration_with_fake_clock(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        sp = reg.span("stage_seconds", buckets=(0.1, 1.0))
        with sp:
            clock.advance(0.5)
        with sp:
            clock.advance(0.05)
        h = reg.histogram("stage_seconds", buckets=(0.1, 1.0))
        assert h.count == 2 and h.sum == pytest.approx(0.55)
        assert h.sample()["buckets"] == [[0.1, 1], [1.0, 1], ["+Inf", 0]]

    def test_stage_times_accumulates(self):
        clock = FakeClock()
        st = StageTimes(clock=clock)
        with st.span("encode"):
            clock.advance(1.0)
        with st.span("ingest"):
            clock.advance(0.25)
        with st.span("encode"):
            clock.advance(0.5)
        st.add("decode", 2.0)
        assert dict(st.items()) == {
            "encode": 1.5, "ingest": 0.25, "decode": 2.0,
        }
        # Insertion-ordered, and the span objects are reused.
        assert [k for k, _ in st.items()] == ["encode", "ingest", "decode"]
        assert st.span("encode") is st.span("encode")


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("x_total")
        c.inc()
        c.inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        with NULL_REGISTRY.span("s"):
            pass
        assert c.value == 0.0
        assert NULL_REGISTRY.as_dict() == {"families": {}}

    def test_shared_instances(self):
        # One instrument object serves every name: no allocation per site.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.span("s") is NULL_REGISTRY.span("t")
        assert NULL_REGISTRY.counter("a").set_function(lambda: 9).value == 0.0


# -- merge ------------------------------------------------------------------

def _dump(build) -> dict:
    reg = MetricsRegistry()
    build(reg)
    return reg.as_dict()


class TestMergeMetrics:
    def test_counters_and_gauges_add(self):
        a = _dump(lambda r: r.counter("c_total").inc(3))
        b = _dump(lambda r: r.counter("c_total").inc(4))
        merged = merge_metrics([a, b])
        assert merged["families"]["c_total"]["samples"][0]["value"] == 7

    def test_label_streams_merge_independently(self):
        def one(r):
            r.counter("c_total", labels={"w": "0"}).inc(1)
            r.counter("c_total", labels={"w": "1"}).inc(10)

        merged = merge_metrics([_dump(one), _dump(one)])
        by = {s["labels"]["w"]: s["value"]
              for s in merged["families"]["c_total"]["samples"]}
        assert by == {"0": 2, "1": 20}

    def test_histograms_add_bucketwise(self):
        def one(r):
            h = r.histogram("h", buckets=(1.0, 10.0))
            h.observe(0.5)
            h.observe(5.0)

        merged = merge_metrics([_dump(one), _dump(one), None])
        s = merged["families"]["h"]["samples"][0]
        assert s["buckets"] == [[1.0, 2], [10.0, 2], ["+Inf", 0]]
        assert s["count"] == 4 and s["sum"] == pytest.approx(11.0)

    def test_bucket_mismatch_raises(self):
        a = _dump(lambda r: r.histogram("h", buckets=(1.0, 2.0)).observe(1))
        b = _dump(lambda r: r.histogram("h", buckets=(1.0, 3.0)).observe(1))
        with pytest.raises(ValueError, match="different buckets"):
            merge_metrics([a, b])

    def test_type_mismatch_raises(self):
        a = _dump(lambda r: r.counter("x").inc())
        b = _dump(lambda r: r.gauge("x").set(1))
        with pytest.raises(ValueError, match="cannot merge metric"):
            merge_metrics([a, b])

    def test_none_parts_skip_and_all_none_stays_none(self):
        assert merge_metrics([]) is None
        assert merge_metrics([None, None]) is None
        a = _dump(lambda r: r.counter("c_total").inc())
        assert merge_metrics([None, a, None]) == a

    def test_merge_does_not_mutate_inputs(self):
        a = _dump(lambda r: r.counter("c_total").inc(1))
        b = _dump(lambda r: r.counter("c_total").inc(2))
        before = json.dumps([a, b], sort_keys=True)
        merge_metrics([a, b])
        assert json.dumps([a, b], sort_keys=True) == before


# -- exposition -------------------------------------------------------------

class TestRenderPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("pint_x_total", "records in", {"sink": "path"}).inc(41)
        reg.gauge("pint_depth").set(2.5)
        text = render_prometheus(reg)
        assert "# HELP pint_x_total records in" in text
        assert "# TYPE pint_x_total counter" in text
        assert 'pint_x_total{sink="path"} 41' in text  # integral: no ".0"
        assert "pint_depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("pint_h", buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert 'pint_h_bucket{le="1"} 2' in text
        assert 'pint_h_bucket{le="10"} 3' in text
        assert 'pint_h_bucket{le="+Inf"} 4' in text
        assert "pint_h_sum 56.1" in text
        assert "pint_h_count 4" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("pint_e_total", labels={"q": 'a"b\\c\nd'}).inc()
        text = render_prometheus(reg)
        assert 'q="a\\"b\\\\c\\nd"' in text

    def test_accepts_dict_and_merged_payloads(self):
        a = _dump(lambda r: r.counter("c_total").inc(2))
        b = _dump(lambda r: r.counter("c_total").inc(3))
        text = render_prometheus(merge_metrics([a, b]))
        assert "c_total 5" in text


class TestMetricsHTTPServer:
    def test_scrape_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("pint_up_total").inc(7)
        with MetricsHTTPServer(reg) as srv:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.port}/metrics", timeout=5
            ) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode()
        assert "pint_up_total 7" in body

    def test_scrape_sees_live_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("pint_live_total")
        with MetricsHTTPServer(reg) as srv:
            url = f"http://127.0.0.1:{srv.port}/metrics"
            c.inc()
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert "pint_live_total 1" in resp.read().decode()
            c.inc(9)
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert "pint_live_total 10" in resp.read().decode()

    def test_unknown_path_404(self):
        with MetricsHTTPServer(MetricsRegistry()) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.port}/nope", timeout=5
                )
            assert exc.value.code == 404

    def test_callable_source(self):
        box = {"families": {"pint_fn": {
            "type": "gauge", "help": "", "samples":
            [{"labels": {}, "value": 1}],
        }}}
        with MetricsHTTPServer(lambda: box) as srv:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.port}/metrics", timeout=5
            ) as resp:
                assert "pint_fn 1" in resp.read().decode()


# -- watch ------------------------------------------------------------------

class TestRingBuffer:
    def test_append_and_order(self):
        ring = RingBuffer(3)
        for i in range(2):
            ring.append(i)
        assert list(ring) == [0, 1]
        assert ring.oldest() == 0 and ring.latest() == 1

    def test_wraparound_overwrites_oldest(self):
        ring = RingBuffer(3)
        for i in range(7):
            ring.append(i)
        assert len(ring) == 3
        assert list(ring) == [4, 5, 6]
        assert ring.oldest() == 4 and ring.latest() == 6

    def test_capacity_one(self):
        ring = RingBuffer(1)
        ring.append("a")
        ring.append("b")
        assert list(ring) == ["b"]
        assert ring.latest() == ring.oldest() == "b"

    def test_empty_and_invalid(self):
        with pytest.raises(ValueError):
            RingBuffer(0)
        ring = RingBuffer(2)
        assert list(ring) == [] and len(ring) == 0
        with pytest.raises(IndexError):
            ring.latest()
        with pytest.raises(IndexError):
            ring.oldest()


class TestSparkline:
    def test_scales_to_max(self):
        line = sparkline([0, 5, 10])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "█"

    def test_all_zero_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0, 0]) == "   "

    def test_width_clips_oldest(self):
        assert len(sparkline(range(100), width=10)) == 10


def _watch_fixture(obs=None):
    """A live query server over a freshly fed collector."""
    trace = build_trace("hadoop", packets=400, seed=3)
    coll = Collector(
        path_consumer_factory(trace.universe, digest_bits=8, num_hashes=1,
                              seed=3),
        num_shards=2, seed=3, obs=obs,
    )
    from repro.replay import TraceDataplane
    import numpy as np
    dp = TraceDataplane(trace, digest_bits=8, num_hashes=1, seed=3)
    rows = np.arange(len(trace), dtype=np.int64)
    coll.ingest_batch(trace.flow_id, trace.pid, trace.hop_counts,
                      dp.encode_rows(rows), now=1.0)
    metrics_fn = (lambda: obs.as_dict()) if obs is not None else None
    return QueryServer(coll, threading.Lock(), metrics_fn=metrics_fn).start()


class TestWatcher:
    def test_session_renders_frames_and_rates(self):
        qs = _watch_fixture()
        out = io.StringIO()
        clock = FakeClock()
        try:
            w = Watcher("127.0.0.1", qs.port, interval=1.0, history=8,
                        out=out, clock=clock,
                        sleep=lambda dt: clock.advance(dt), clear=False)
            frames = w.run(iterations=3)
        finally:
            qs.close()
        assert frames == 3
        text = out.getvalue()
        assert text.count("repro.obs watch") == 3
        assert "records" in text and "ingest rate" in text
        # Three samples one fake-second apart, no new records: two
        # adjacent-pair rates, both exactly zero.
        assert w.rates() == [0.0, 0.0]
        assert len(w.ring) == 3

    def test_metric_lines_appear_with_registry(self):
        obs = MetricsRegistry()
        qs = _watch_fixture(obs=obs)
        out = io.StringIO()
        clock = FakeClock()
        try:
            w = Watcher("127.0.0.1", qs.port, interval=0.5, history=4,
                        out=out, clock=clock,
                        sleep=lambda dt: clock.advance(dt), clear=False)
            frames = w.run(iterations=1)
        finally:
            qs.close()
        assert frames == 1
        # The collector was built with this registry, so the frame
        # carries the per-batch stage digest.
        assert "stages:" in out.getvalue()
        assert "consume" in out.getvalue()

    def test_bare_collector_omits_wire_lines(self):
        qs = _watch_fixture()  # no stats_fn, no metrics_fn
        out = io.StringIO()
        clock = FakeClock()
        try:
            Watcher("127.0.0.1", qs.port, interval=1.0, history=4,
                    out=out, clock=clock,
                    sleep=lambda dt: clock.advance(dt), clear=False,
                    ).run(iterations=1)
        finally:
            qs.close()
        assert "wire:" not in out.getvalue()
        assert "stages:" not in out.getvalue()

    def test_connection_loss_is_a_message_not_a_traceback(self):
        qs = _watch_fixture()
        port = qs.port
        out = io.StringIO()
        clock = FakeClock()
        w = Watcher("127.0.0.1", port, interval=1.0, history=4, out=out,
                    clock=clock, sleep=lambda dt: clock.advance(dt),
                    clear=False)
        qs.close()  # server gone before the watch starts
        frames = w.run(iterations=2)
        assert frames == 0
        assert "connection lost" in out.getvalue()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Watcher(interval=0.0)


class TestObsCLI:
    def test_parser_shapes(self):
        from repro.obs.__main__ import build_parser
        args = build_parser().parse_args(["watch", "--port", "7",
                                          "--iterations", "2", "--no-clear"])
        assert args.port == 7 and args.iterations == 2 and args.no_clear
        args = build_parser().parse_args(["dump", "--port", "7", "--json"])
        assert args.json is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch"])  # --port required

    def test_dump_prints_exposition(self, capsys):
        from repro.obs.__main__ import main
        obs = MetricsRegistry()
        obs.counter("pint_cli_total").inc(3)
        qs = _watch_fixture(obs=obs)
        try:
            assert main(["dump", "--port", str(qs.port)]) == 0
        finally:
            qs.close()
        assert "pint_cli_total 3" in capsys.readouterr().out


# -- driver stage breakdown -------------------------------------------------

class TestDriverStageBreakdown:
    def test_report_carries_stage_seconds(self):
        trace = build_trace("incast", packets=800, seed=0)
        report = ReplayDriver(batch_size=256, seed=0).replay(trace)
        stages = dict(report.stage_seconds)
        for stage in ("select", "encode", "ingest", "decode", "transport"):
            assert stage in stages and stages[stage] >= 0.0
        d = report.as_dict()
        assert d["stage_seconds"] == stages
        json.dumps(d, allow_nan=True)

    def test_obs_driver_fills_stage_histogram(self):
        obs = MetricsRegistry()
        trace = build_trace("hadoop", packets=600, seed=1)
        ReplayDriver(batch_size=256, seed=1, obs=obs).replay(trace)
        fam = obs.as_dict()["families"]["pint_replay_stage_seconds"]
        stages = {s["labels"]["stage"] for s in fam["samples"]}
        assert {"select", "encode", "ingest", "decode"} <= stages
        text = render_prometheus(obs)
        assert 'pint_replay_stage_seconds_count{stage="encode"} 1' in text

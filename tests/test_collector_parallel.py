"""Tests for the multi-process parallel collector (repro.collector.parallel)."""

import numpy as np
import pytest

from repro.collector import (
    Collector,
    ParallelCollector,
    ShardRouter,
    Snapshot,
    congestion_consumer_factory,
)
from repro.collector.snapshot import ShardStats


def make_cols(n=4000, flows=60, seed=2):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, flows, n),
        np.arange(1, n + 1),
        rng.integers(2, 7, n),
        rng.integers(0, 256, n),
    )


def feed_both(serial, par, cols, batch=777, timed=False):
    """Stream the same batches into both collectors; drain the parallel one."""
    fids, pids, hops, digs = cols
    n = len(fids)
    now = 0.0
    for lo in range(0, n, batch):
        hi = min(lo + batch, n)
        now += 1.0
        kw = {"now": now} if timed else {}
        serial.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                            digs[lo:hi], **kw)
        par.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                         digs[lo:hi], **kw)
    par.drain()


class TestLifecycle:
    def test_context_manager_starts_and_stops(self):
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4
        )
        assert not par.started
        with par:
            assert par.started
            par.ingest_batch([1, 2, 3], [1, 2, 3], [3, 3, 3], [5, 6, 7])
            par.drain()
            assert len(par) == 3
        assert not par.started
        with pytest.raises(RuntimeError):
            par.start()  # a closed collector does not resurrect

    def test_lazy_start_on_first_ingest(self):
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        )
        try:
            par.ingest(9, 1, 3, 40)
            assert par.started
            assert par.result(9) is not None
        finally:
            par.close()

    def test_close_is_idempotent(self):
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        ).start()
        par.close()
        par.close()

    def test_validation(self):
        factory = congestion_consumer_factory()
        with pytest.raises(ValueError):
            ParallelCollector(factory, workers=0, num_shards=4)
        with pytest.raises(ValueError):
            ParallelCollector(factory, workers=8, num_shards=4)
        with pytest.raises(ValueError):
            ParallelCollector(factory, workers=2, num_shards=4,
                              router=ShardRouter(8, 0))

    def test_queries_do_not_fork_before_first_ingest(self):
        # Read-only probes on a collector that never ingested answer
        # "empty" locally instead of spawning worker processes -- and
        # the idle snapshot still shows the same per-shard rows a
        # fresh serial collector would (monitoring parity).
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4
        )
        snap = par.snapshot()
        assert snap.records == 0 and snap.flows == 0
        serial = Collector(congestion_consumer_factory(), num_shards=4)
        assert snap.as_dict() == serial.snapshot().as_dict()
        assert par.flow(1) is None
        assert par.result(1) is None
        assert par.evict(1) is False
        assert len(par) == 0
        assert par.expire() == 0
        assert not par.started

    def test_closed_collector_refuses_queries(self):
        # After close() the worker state is gone; empty answers would
        # masquerade as real ones, so every operation raises.
        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        )
        with par:
            par.ingest_batch([1, 2], [1, 2], [3, 3], [9, 9])
            par.drain()
            assert par.result(1) is not None
        for op in (
            lambda: par.result(1), lambda: par.flow(1),
            lambda: par.flows([1]), lambda: par.snapshot(),
            lambda: len(par), lambda: par.expire(),
            lambda: par.evict(1), lambda: par.drain(),
            lambda: par.ingest_batch([], [], [], []),  # even empty
        ):
            with pytest.raises(RuntimeError, match="closed"):
                op()


class TestEquivalence:
    def test_snapshot_and_results_match_serial(self):
        cols = make_cols()
        serial = Collector(
            congestion_consumer_factory(seed=1), num_shards=8, seed=1
        )
        with ParallelCollector(
            congestion_consumer_factory(seed=1), workers=4, num_shards=8,
            seed=1,
        ) as par:
            feed_both(serial, par, cols)
            assert serial.snapshot().as_dict() == par.snapshot().as_dict()
            assert len(serial) == len(par)
            for fid in np.unique(cols[0]).tolist():
                assert serial.result(fid) == par.result(fid)

    def test_flow_returns_detached_consumer_copy(self):
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        ) as par:
            par.ingest_batch([5, 5], [1, 2], [3, 3], [10, 30])
            consumer = par.flow(5)
            assert consumer.max_code == 30
            consumer.max_code = 999          # mutating the copy...
            assert par.flow(5).max_code == 30  # ...never reaches the worker
            assert par.flow(404) is None

    def test_bulk_flows_matches_per_flow_rpc(self):
        cols = make_cols(n=1500, flows=25, seed=7)
        serial = Collector(
            congestion_consumer_factory(seed=2), num_shards=4, seed=2
        )
        with ParallelCollector(
            congestion_consumer_factory(seed=2), workers=2, num_shards=4,
            seed=2,
        ) as par:
            feed_both(serial, par, cols)
            probe = np.unique(cols[0]).tolist() + [10**9]  # + unknown id
            bulk = par.flows(probe)
            assert len(bulk) == len(probe)
            for fid, consumer in zip(probe, bulk):
                single = par.flow(fid)
                reference = serial.flow(fid)
                assert (consumer is None) == (single is None) == (
                    reference is None
                )
                if consumer is not None:
                    assert consumer.max_code == reference.max_code
            assert par.flows([]) == []

    def test_scalar_ingest_routes_like_serial(self):
        serial = Collector(congestion_consumer_factory(), num_shards=4, seed=3)
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4, seed=3
        ) as par:
            for i in range(60):
                serial.ingest(i % 7, i, 4, i % 256)
                par.ingest(i % 7, i, 4, i % 256)
            par.drain()
            assert serial.snapshot().as_dict() == par.snapshot().as_dict()

    def test_lru_bounded_tables_match_serial(self):
        cols = make_cols(n=2500, flows=30, seed=5)
        serial = Collector(
            congestion_consumer_factory(), num_shards=4,
            max_flows_per_shard=2, seed=0,
        )
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4,
            max_flows_per_shard=2, seed=0,
        ) as par:
            feed_both(serial, par, cols)
            assert serial.snapshot().as_dict() == par.snapshot().as_dict()
            for fid in np.unique(cols[0]).tolist():
                assert serial.result(fid) == par.result(fid)

    def test_ttl_expiry_and_evict_rpc(self):
        serial = Collector(
            congestion_consumer_factory(), num_shards=4, ttl=3.0, seed=0
        )
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4, ttl=3.0,
            seed=0,
        ) as par:
            feed_both(serial, par, make_cols(n=600, flows=12), timed=True)
            assert serial.expire(now=100.0) == par.expire(now=100.0)
            assert len(serial) == len(par) == 0
            serial.ingest(3, 1, 3, 9, now=101.0)
            par.ingest(3, 1, 3, 9, now=101.0)
            assert serial.evict(3) is par.evict(3) is True
            assert serial.evict(3) is par.evict(3) is False


class TestClockGuard:
    def test_clock_modes_cannot_mix(self):
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        ) as par:
            par.ingest(1, 1, 3, 10, now=1.0)
            with pytest.raises(ValueError):
                par.ingest(1, 2, 3, 10)
            with pytest.raises(ValueError):
                par.ingest_batch([1], [3], [3], [1])
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        ) as free:
            free.ingest(1, 1, 3, 10)
            with pytest.raises(ValueError):
                free.ingest(1, 2, 3, 10, now=2.0)
            with pytest.raises(ValueError):
                free.expire(now=2.0)
            assert free.expire() == 0


def _exploding_factory(flow_id):
    if flow_id == 13:
        raise RuntimeError("unlucky flow")
    if flow_id == 17:
        raise RuntimeError("second failure mode")
    from repro.collector import CongestionDigestConsumer
    return CongestionDigestConsumer()


class TestFailurePropagation:
    def test_worker_ingest_failure_surfaces_at_drain(self):
        with ParallelCollector(
            _exploding_factory, workers=2, num_shards=2
        ) as par:
            par.ingest_batch([13], [1], [3], [5])
            with pytest.raises(RuntimeError, match="unlucky flow"):
                par.drain()
            # The failed drain consumed *every* worker's reply, so the
            # RPC protocol stays in sync: snapshots and further ingest
            # keep working on all workers, error delivered once.
            assert par.snapshot().num_shards == 2
            par.drain()
            par.ingest_batch([7], [2], [3], [9])
            par.drain()
            assert par.result(7) is not None
            # The exploding batch died before counting its record.
            assert par.snapshot().records == 1

    def test_close_reports_a_dead_worker(self):
        import os
        import signal

        par = ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=2
        ).start()
        par.ingest_batch([1, 2], [1, 2], [3, 3], [9, 9])
        par.drain()
        os.kill(par._procs[0].pid, signal.SIGKILL)
        par._procs[0].join(timeout=5.0)
        # A worker that died holding shard state must not vanish
        # silently: close() reports it instead of returning clean.
        with pytest.raises(RuntimeError, match="stop"):
            par.close()
        par.close()  # idempotent afterwards

    def test_distinct_failures_are_all_reported(self):
        # A second batch failing for a different reason must not be
        # shadowed by the first parked error.
        with ParallelCollector(
            _exploding_factory, workers=1, num_shards=1
        ) as par:
            par.ingest_batch([13], [1], [3], [5])
            par.ingest_batch([17], [2], [3], [5])
            with pytest.raises(RuntimeError) as excinfo:
                par.drain()
            assert "unlucky flow" in str(excinfo.value)
            assert "second failure mode" in str(excinfo.value)
            par.drain()  # delivered once, then serviceable again

    def test_worker_ingest_failure_surfaces_at_close(self):
        # Even without an intervening drain()/query, the error parked
        # by a fire-and-forget batch must come out on close().
        par = ParallelCollector(_exploding_factory, workers=2, num_shards=2)
        par.ingest_batch([13], [1], [3], [5])
        with pytest.raises(RuntimeError, match="unlucky flow"):
            par.close()
        assert not par.started
        par.close()  # still idempotent after the raise


class TestSnapshotMerge:
    def _stats(self, shard_id):
        return ShardStats(
            shard_id=shard_id, flows=1, records=2, batches=1, created=1,
            lru_evictions=0, ttl_evictions=0, completed_flows=1,
            state_bytes=100,
        )

    def test_merged_orders_by_shard_id(self):
        a = Snapshot(taken_at=1.0, shards=[self._stats(2), self._stats(0)])
        b = Snapshot(taken_at=3.0, shards=[self._stats(1)])
        merged = Snapshot.merged([a, b])
        assert [s.shard_id for s in merged.shards] == [0, 1, 2]
        assert merged.taken_at == 3.0
        assert merged.records == 6

    def test_merged_explicit_stamp(self):
        merged = Snapshot.merged(
            [Snapshot(taken_at=1.0, shards=[self._stats(0)])], taken_at=9.0
        )
        assert merged.taken_at == 9.0

    def test_merged_rejects_overlapping_shards(self):
        a = Snapshot(taken_at=1.0, shards=[self._stats(0)])
        b = Snapshot(taken_at=1.0, shards=[self._stats(0)])
        with pytest.raises(ValueError):
            Snapshot.merged([a, b])


class TestHeterogeneousSidecarMerge:
    """`Snapshot.merged` with per-part service/metrics sidecars.

    Workers differ: one stood behind a front door and carries wire
    counters, another is bare; one was instrumented, another not.  The
    merge must sum what exists, skip what doesn't, and collapse to
    None only when every part abstains.
    """

    def _stats(self, shard_id):
        return ShardStats(
            shard_id=shard_id, flows=1, records=2, batches=1, created=1,
            lru_evictions=0, ttl_evictions=0, completed_flows=1,
            state_bytes=100,
        )

    def _registry_dump(self, n):
        from repro.obs import MetricsRegistry
        reg = MetricsRegistry()
        reg.counter("pint_collector_records_total").inc(n)
        reg.histogram("pint_x_seconds", buckets=(1.0, 10.0)).observe(0.5)
        return reg.as_dict()

    def test_service_sums_over_present_parts_only(self):
        from repro.collector.snapshot import ServiceStats
        a = Snapshot(taken_at=1.0, shards=[self._stats(0)],
                     service=ServiceStats(frames_received=3,
                                          records_ingested=30))
        b = Snapshot(taken_at=2.0, shards=[self._stats(1)], service=None)
        c = Snapshot(taken_at=3.0, shards=[self._stats(2)],
                     service=ServiceStats(frames_received=4,
                                          dropped_queue_full=1))
        merged = Snapshot.merged([a, b, c])
        assert merged.service == ServiceStats(
            frames_received=7, records_ingested=30, dropped_queue_full=1,
        )

    def test_metrics_fold_over_present_parts_only(self):
        a = Snapshot(taken_at=1.0, shards=[self._stats(0)],
                     metrics=self._registry_dump(10))
        b = Snapshot(taken_at=2.0, shards=[self._stats(1)], metrics=None)
        c = Snapshot(taken_at=3.0, shards=[self._stats(2)],
                     metrics=self._registry_dump(5))
        merged = Snapshot.merged([a, b, c])
        fams = merged.metrics["families"]
        assert fams["pint_collector_records_total"]["samples"][0]["value"] == 15
        assert fams["pint_x_seconds"]["samples"][0]["count"] == 2

    def test_all_none_sidecars_stay_none(self):
        merged = Snapshot.merged([
            Snapshot(taken_at=1.0, shards=[self._stats(0)]),
            Snapshot(taken_at=2.0, shards=[self._stats(1)]),
        ])
        assert merged.service is None and merged.metrics is None

    def test_metrics_excluded_from_equality_and_as_dict(self):
        bare = Snapshot(taken_at=1.0, shards=[self._stats(0)])
        wired = Snapshot(taken_at=1.0, shards=[self._stats(0)],
                         metrics=self._registry_dump(99))
        assert bare == wired  # compare=False: observation isn't state
        assert "metrics" not in wired.as_dict()
        assert bare.as_dict() == wired.as_dict()

    def test_with_metrics_folds_or_passes_through(self):
        snap = Snapshot(taken_at=1.0, shards=[self._stats(0)],
                        metrics=self._registry_dump(1))
        assert snap.with_metrics(None) is snap
        folded = snap.with_metrics(self._registry_dump(4))
        fams = folded.metrics["families"]
        assert fams["pint_collector_records_total"]["samples"][0]["value"] == 5


class TestParallelObs:
    def _feed(self, par, cols, batch=500):
        fids, pids, hops, digs = cols
        for lo in range(0, len(fids), batch):
            hi = min(lo + batch, len(fids))
            par.ingest_batch(fids[lo:hi], pids[lo:hi], hops[lo:hi],
                             digs[lo:hi])
        par.drain()

    def test_worker_registries_merge_into_snapshot(self):
        from repro.obs import MetricsRegistry
        obs = MetricsRegistry()
        cols = make_cols(3000)
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4, obs=obs,
        ) as par:
            self._feed(par, cols)
            snap = par.snapshot()
        fams = snap.metrics["families"]
        records = fams["pint_collector_records_total"]["samples"]
        # Every worker contributed its own labelled stream, and the
        # streams sum to exactly what was scattered.
        assert {s["labels"]["worker"] for s in records} == {"0", "1"}
        assert sum(s["value"] for s in records) == 3000
        assert fams["pint_parallel_scatter_seconds"]["samples"][0]["count"] > 0

    def test_backlog_gauge_returns_to_zero_after_drain(self):
        from repro.obs import MetricsRegistry
        obs = MetricsRegistry()
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4, obs=obs,
        ) as par:
            self._feed(par, make_cols(2000))
            fams = par.snapshot().metrics["families"]
            backlog = fams["pint_parallel_worker_backlog"]["samples"]
            assert {s["labels"]["worker"] for s in backlog} == {"0", "1"}
            assert all(s["value"] == 0 for s in backlog)
            sent = fams["pint_parallel_batches_sent_total"]["samples"]
            assert sum(s["value"] for s in sent) > 0

    def test_instrumented_parallel_bit_identical_to_serial(self):
        from repro.obs import MetricsRegistry
        cols = make_cols(4000)
        serial = Collector(congestion_consumer_factory(), num_shards=4)
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4,
            obs=MetricsRegistry(),
        ) as par:
            feed_both(serial, par, cols, timed=True)
            assert par.snapshot().as_dict() == serial.snapshot().as_dict()

    def test_uninstrumented_snapshot_carries_no_metrics(self):
        with ParallelCollector(
            congestion_consumer_factory(), workers=2, num_shards=4,
        ) as par:
            self._feed(par, make_cols(1000))
            assert par.snapshot().metrics is None

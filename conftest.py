"""Repo-wide pytest configuration: deterministic test sharding.

CI splits the tier-1 suite across parallel jobs with ``--shard-count
N --shard-index K`` (1-based ``K``).  The partition is a stable hash
of the test's nodeid -- ``zlib.crc32``, not the per-process-salted
builtin ``hash()`` -- so every run on every interpreter assigns the
same test to the same shard and the union of the shards is exactly
the full suite.  The default ``--shard-count 1`` keeps plain
``pytest`` invocations (the tier-1 command, local runs) unchanged.
"""

import zlib

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("shard", "deterministic test sharding")
    group.addoption(
        "--shard-count", type=int, default=1,
        help="total number of shards the suite is split into",
    )
    group.addoption(
        "--shard-index", type=int, default=1,
        help="1-based index of the shard this run executes",
    )


def pytest_collection_modifyitems(config, items):
    count = config.getoption("--shard-count")
    index = config.getoption("--shard-index")
    if count <= 1:
        return
    if not 1 <= index <= count:
        raise pytest.UsageError(
            f"--shard-index {index} out of range 1..{count}"
        )
    kept, deselected = [], []
    for item in items:
        if zlib.crc32(item.nodeid.encode()) % count == index - 1:
            kept.append(item)
        else:
            deselected.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = kept
